"""Property: the sweep cache key is sound.

Two directions, matching the two failure modes an on-disk result cache
can have:

* **No collisions** -- every behaviour-changing knob anywhere in the
  :class:`~repro.core.platform.PlatformConfig` tree (and the other
  :class:`~repro.experiments.runner.RunSpec` fields) must perturb
  :func:`~repro.experiments.runner.run_spec_key`; a knob the key ignores
  would serve stale results recorded under a different semantics.  The
  walker below visits *every leaf field* of the config tree reflectively,
  so a future config field is covered the day it is added -- if it is
  deliberately non-semantic it must be added to ``KEY_EXEMPT_PLATFORM``
  here, which is exactly the conscious decision the test exists to force.
* **No spurious misses** -- random pairs of specs must map to equal keys
  *iff* they are semantically identical (equal after erasing the two
  known non-semantic fields: the ``platform_name`` display label and the
  bit-exact ``vectorized_movement`` engine selector).
"""

from __future__ import annotations

import copy
import dataclasses
import enum
from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.platform import PlatformConfig
from repro.dram.cxl import CXLPuDConfig
from repro.experiments.runner import RunSpec, run_spec_key
from repro.ssd.lifetime import MID_LIFE_PROFILE

#: Platform-tree fields deliberately excluded from the cache key, with
#: the invariant that justifies each exclusion.
KEY_EXEMPT_PLATFORM = {
    # The vectorized engine is bit-exact against the object engine (see
    # tests/test_vectorized_movement.py), so both may share entries.
    ("vectorized_movement",),
    # The wave-batched decision engine is bit-exact against the
    # per-instruction reference (see tests/test_batched_offload.py), so
    # both may share entries.
    ("batched_offload",),
}


def _perturbation_candidates(value: object,
                             path: Tuple[str, ...] = ()) -> List[object]:
    """Different-but-well-typed replacements for a leaf field value.

    Several candidates are offered because config validation constrains
    many leaves (thresholds ordered against each other, ratios in
    ``[0, 1]``); the caller uses the first candidate the config tree
    accepts.  ``path`` disambiguates the ``None``-default optional leaves
    (the CXL tier and the drive-age profile), which need a replacement of
    the right optional type.
    """
    if isinstance(value, bool):
        return [not value]
    if isinstance(value, enum.Enum):
        members = sorted(type(value), key=lambda member: member.value)
        return [members[(members.index(value) + 1) % len(members)]]
    if isinstance(value, int):
        return [value + 1, max(1, value - 1)]
    if isinstance(value, float):
        return [value * 2.0 + 1.0, value * 0.5 + 0.01, value * 0.9]
    if isinstance(value, str):
        return [value + "-perturbed"]
    if value is None:
        if path and path[-1] == "drive_age":
            return [MID_LIFE_PROFILE]
        # The other None-default leaf is the optional CXL tier.
        return [CXLPuDConfig()]
    raise AssertionError(
        f"config leaf of unhandled type {type(value).__name__}: {value!r}; "
        "teach _perturbation_candidates about it (and decide whether the "
        "cache key must cover it)")


def _leaf_paths(value: object, prefix: Tuple[str, ...] = ()
                ) -> List[Tuple[str, ...]]:
    """Every leaf field path of a dataclass tree, depth first."""
    paths: List[Tuple[str, ...]] = []
    for spec_field in dataclasses.fields(value):
        child = getattr(value, spec_field.name)
        path = prefix + (spec_field.name,)
        if dataclasses.is_dataclass(child):
            paths.extend(_leaf_paths(child, path))
        else:
            paths.append(path)
    return paths


def _replace_at(value, path: Tuple[str, ...], leaf_value):
    """A copy of a dataclass tree with the leaf at ``path`` replaced."""
    name = path[0]
    if len(path) == 1:
        return dataclasses.replace(value, **{name: leaf_value})
    return dataclasses.replace(value, **{
        name: _replace_at(getattr(value, name), path[1:], leaf_value)})


def _follow(value, path: Tuple[str, ...]):
    for name in path:
        value = getattr(value, name)
    return value


def _perturb_leaf(platform: PlatformConfig,
                  path: Tuple[str, ...]) -> PlatformConfig:
    """``platform`` with the leaf at ``path`` changed to a valid value."""
    leaf = _follow(platform, path)
    errors = []
    for candidate in _perturbation_candidates(leaf, path):
        if candidate == leaf:
            continue
        try:
            return _replace_at(platform, path, candidate)
        except Exception as error:  # config validation rejected it
            errors.append(error)
    raise AssertionError(
        f"no valid perturbation found for {'.'.join(path)} "
        f"(value {leaf!r}): {errors}")


BASE_SPEC = RunSpec(workload="AES", scale=0.05, policy="Conduit")


class TestEveryKnobPerturbsTheKey:
    """Reflective sweep over all PlatformConfig leaves (101 today)."""

    @pytest.mark.parametrize(
        "path", _leaf_paths(PlatformConfig()),
        ids=lambda path: ".".join(path))
    def test_platform_leaf(self, path):
        base_key = run_spec_key(BASE_SPEC)
        platform = _perturb_leaf(BASE_SPEC.platform, path)
        key = run_spec_key(dataclasses.replace(BASE_SPEC,
                                               platform=platform))
        if path in KEY_EXEMPT_PLATFORM:
            assert key == base_key, (
                f"{'.'.join(path)} is documented as non-semantic and must "
                "share cache entries")
        else:
            assert key != base_key, (
                f"platform knob {'.'.join(path)} does NOT perturb the "
                "cache key; stale entries would be served across its "
                "values")

    def test_grown_drive_age_leaves_are_covered_too(self):
        """Leaves of the optional drive-age profile (None by default)."""
        platform = _replace_at(BASE_SPEC.platform,
                               ("lifetime", "drive_age"), MID_LIFE_PROFILE)
        spec = dataclasses.replace(BASE_SPEC, platform=platform)
        base_key = run_spec_key(spec)
        for path in _leaf_paths(platform.lifetime.drive_age,
                                ("lifetime", "drive_age")):
            perturbed = _perturb_leaf(platform, path)
            key = run_spec_key(dataclasses.replace(spec,
                                                   platform=perturbed))
            assert key != base_key, (
                f"drive-age knob {'.'.join(path)} does not perturb the key")

    def test_grown_cxl_tier_leaves_are_covered_too(self):
        """Leaves of the optional tier (absent from the default tree)."""
        platform = dataclasses.replace(BASE_SPEC.platform,
                                       cxl_pud=CXLPuDConfig())
        spec = dataclasses.replace(BASE_SPEC, platform=platform)
        base_key = run_spec_key(spec)
        for path in _leaf_paths(platform.cxl_pud, ("cxl_pud",)):
            perturbed = _perturb_leaf(platform, path)
            key = run_spec_key(dataclasses.replace(spec,
                                                   platform=perturbed))
            assert key != base_key, (
                f"CXL tier knob {'.'.join(path)} does not perturb the key")

    def test_spec_level_fields(self):
        base_key = run_spec_key(BASE_SPEC)
        assert run_spec_key(dataclasses.replace(
            BASE_SPEC, workload="XOR Filter")) != base_key
        assert run_spec_key(dataclasses.replace(
            BASE_SPEC, scale=0.1)) != base_key
        assert run_spec_key(dataclasses.replace(
            BASE_SPEC, policy="CPU")) != base_key
        # Content-defined workload identity (trace hash, zipf params) is
        # semantic: it must perturb the key.
        assert run_spec_key(dataclasses.replace(
            BASE_SPEC, workload_params=(("trace", "deadbeef"),))) != base_key
        assert run_spec_key(dataclasses.replace(
            BASE_SPEC, workload_params=(("trace", "deadbeef"),))) != \
            run_spec_key(dataclasses.replace(
                BASE_SPEC, workload_params=(("trace", "cafef00d"),)))
        # The variant display label is presentation, not semantics.
        assert run_spec_key(dataclasses.replace(
            BASE_SPEC, platform_name="an-alias")) == base_key

    def test_key_is_a_pure_function_of_the_spec(self):
        assert run_spec_key(BASE_SPEC) == run_spec_key(
            copy.deepcopy(BASE_SPEC))


# ------------------------------------------------------------------------
# Random pairs: key equality iff semantic identity
# ------------------------------------------------------------------------

#: Small finite pools so Hypothesis actually generates colliding pairs
#: (with wide pools every pair would differ and the iff would only ever
#: be exercised in one direction).
SPECS = st.builds(
    RunSpec,
    workload=st.sampled_from(["AES", "jacobi-1d"]),
    scale=st.sampled_from([0.05, 0.1]),
    policy=st.sampled_from(["Conduit", "CPU"]),
    platform=st.builds(
        PlatformConfig,
        contention_feedback=st.booleans(),
        contention_gain=st.sampled_from([1.0, 2.0]),
        isp_cores=st.integers(min_value=1, max_value=2),
        vectorized_movement=st.booleans(),
        cxl_pud=st.sampled_from([None, CXLPuDConfig()]),
    ),
    platform_name=st.sampled_from(["default", "an-alias"]),
    workload_params=st.sampled_from([(), (("trace", "deadbeef"),),
                                     (("zipf", "seed=1"),)]),
)


def _semantic(spec: RunSpec) -> RunSpec:
    """The spec with its two non-semantic fields erased."""
    return dataclasses.replace(
        spec, platform_name="",
        platform=dataclasses.replace(spec.platform,
                                     vectorized_movement=True))


class TestRandomSpecPairs:
    @given(a=SPECS, b=SPECS)
    @settings(max_examples=150, deadline=None)
    def test_key_equality_iff_semantic_identity(self, a, b):
        assert (run_spec_key(a) == run_spec_key(b)) == (
            _semantic(a) == _semantic(b))

    @given(spec=SPECS)
    @settings(max_examples=50, deadline=None)
    def test_key_is_deterministic(self, spec):
        assert run_spec_key(spec) == run_spec_key(copy.deepcopy(spec))
