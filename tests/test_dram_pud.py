"""Tests for the SSD-internal DRAM model and PuD-SSD compute."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import KIB, OpType, SimulationError
from repro.dram.bank import DRAMBank
from repro.dram.config import DRAMConfig
from repro.dram.dram import DRAMDevice
from repro.dram.pud import PUD_SUPPORTED_OPS, PuDUnit


def small_dram() -> DRAMConfig:
    return DRAMConfig(capacity_bytes=64 * 1024 * 1024)


class TestDRAMBank:
    def test_row_hit_is_faster_than_miss(self):
        config = small_dram()
        bank = DRAMBank(0, config)
        miss_done = bank.access(0.0, row=5)
        hit_done = bank.access(miss_done, row=5)
        assert (hit_done - miss_done) < miss_done

    def test_row_conflict_adds_precharge(self):
        config = small_dram()
        bank = DRAMBank(0, config)
        first = bank.access(0.0, row=1)
        second = bank.access(first, row=2)
        assert (second - first) >= config.t_rp_ns + config.t_rcd_ns

    def test_statistics(self):
        bank = DRAMBank(0, small_dram())
        bank.access(0.0, 1)
        bank.access(100.0, 1)
        bank.access(200.0, 2)
        assert bank.stats.row_hits == 1
        assert bank.stats.row_misses == 2

    def test_out_of_range_row_raises(self):
        with pytest.raises(SimulationError):
            DRAMBank(0, small_dram()).access(0.0, 10 ** 9)

    def test_bulk_bitwise_operation_charges_tbbop(self):
        config = small_dram()
        bank = DRAMBank(0, config)
        done = bank.bulk_bitwise_operation(0.0, steps=4)
        assert done == pytest.approx(4 * config.bbop_latency_ns)
        assert bank.stats.bbop_activations == 4


class TestDRAMDevice:
    def test_reads_and_writes_accumulate(self):
        dram = DRAMDevice(small_dram())
        dram.read(0.0, 0, 4096)
        dram.write(0.0, 8192, 4096)
        assert dram.bytes_read == 4096
        assert dram.bytes_written == 4096

    def test_bank_interleaving(self):
        dram = DRAMDevice(small_dram())
        banks = {dram.bank_of(row * dram.config.row_size_bytes)
                 for row in range(dram.config.banks)}
        assert len(banks) == dram.config.banks

    def test_out_of_range_access_raises(self):
        dram = DRAMDevice(small_dram())
        with pytest.raises(SimulationError):
            dram.read(0.0, dram.config.capacity_bytes, 4096)

    def test_transfer_time_matches_bandwidth(self):
        dram = DRAMDevice(small_dram())
        size = 1 << 20
        assert dram.transfer_time(size) == pytest.approx(
            size / dram.config.bandwidth_bytes_per_ns)


class TestPuDUnit:
    def unit(self) -> PuDUnit:
        return PuDUnit(DRAMDevice(small_dram()))

    def test_supported_operations(self):
        unit = self.unit()
        assert unit.supports(OpType.AND)
        assert unit.supports(OpType.MUL)
        assert not unit.supports(OpType.DIV)
        assert not unit.supports(OpType.GATHER)
        assert len(PUD_SUPPORTED_OPS) >= 16

    def test_bitwise_is_one_step(self):
        unit = self.unit()
        assert unit.steps_for(OpType.AND, 8) == 1

    def test_addition_steps_scale_with_element_width(self):
        unit = self.unit()
        assert unit.steps_for(OpType.ADD, 16) > unit.steps_for(OpType.ADD, 8)

    def test_multiplication_is_much_slower_than_addition(self):
        unit = self.unit()
        add = unit.operation_latency(OpType.ADD, 16 * KIB, 8)
        mul = unit.operation_latency(OpType.MUL, 16 * KIB, 8)
        assert mul > 3 * add

    def test_latency_uses_bank_parallelism(self):
        unit = self.unit()
        one_row = unit.operation_latency(OpType.AND, unit.row_bytes, 8)
        eight_rows = unit.operation_latency(OpType.AND, 8 * unit.row_bytes, 8)
        # Eight rows fit in the eight banks -> same wall-clock latency.
        assert eight_rows == pytest.approx(one_row)
        nine_rows = unit.operation_latency(OpType.AND, 9 * unit.row_bytes, 8)
        assert nine_rows > eight_rows

    def test_unsupported_operation_raises(self):
        with pytest.raises(SimulationError):
            self.unit().steps_for(OpType.GATHER, 8)

    def test_execute_accumulates_energy_and_busy_time(self):
        unit = self.unit()
        timing = unit.execute(0.0, OpType.XOR, 16 * KIB, 8)
        assert timing.latency_ns > 0
        assert unit.operations == 1
        assert unit.energy_nj > 0

    @given(st.sampled_from(sorted(PUD_SUPPORTED_OPS, key=lambda o: o.value)),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_latency_monotonic_in_size(self, op, kib):
        unit = self.unit()
        small = unit.operation_latency(op, kib * KIB, 8)
        large = unit.operation_latency(op, 4 * kib * KIB, 8)
        assert large >= small
