"""Tests for flash channels and controllers."""

import pytest

from repro.ssd.config import NANDConfig
from repro.ssd.flash_controller import FlashChannelSubsystem


def config() -> NANDConfig:
    return NANDConfig(channels=2, dies_per_channel=2, planes_per_die=1,
                      blocks_per_plane=8, pages_per_block=16)


class TestReadPath:
    def test_read_latency_includes_sense_and_transfer(self):
        subsystem = FlashChannelSubsystem(config())
        timing = subsystem.read_page(0.0, channel=0, die=0)
        assert timing.end > config().read_latency_ns
        assert timing.die_done >= config().read_latency_ns
        assert timing.channel_busy_ns > 0

    def test_read_without_transfer_is_cheaper(self):
        subsystem = FlashChannelSubsystem(config())
        with_transfer = subsystem.read_page(0.0, 0, 0, transfer_out=True)
        subsystem_2 = FlashChannelSubsystem(config())
        without = subsystem_2.read_page(0.0, 0, 0, transfer_out=False)
        assert without.end < with_transfer.end

    def test_reads_on_same_die_serialize(self):
        subsystem = FlashChannelSubsystem(config())
        first = subsystem.read_page(0.0, 0, 0)
        second = subsystem.read_page(0.0, 0, 0)
        assert second.die_done >= first.die_done + config().read_latency_ns

    def test_reads_on_different_channels_overlap(self):
        subsystem = FlashChannelSubsystem(config())
        first = subsystem.read_page(0.0, 0, 0)
        second = subsystem.read_page(0.0, 1, 0)
        # Channel-parallel reads should not be serialized die-to-die.
        assert second.die_done < first.die_done + config().read_latency_ns

    def test_invalid_channel_raises(self):
        subsystem = FlashChannelSubsystem(config())
        with pytest.raises(Exception):
            subsystem.read_page(0.0, channel=99, die=0)


class TestProgramErase:
    def test_program_latency_dominated_by_tprog(self):
        subsystem = FlashChannelSubsystem(config())
        timing = subsystem.program_page(0.0, 0, 0)
        assert timing.end >= config().program_latency_ns

    def test_erase_latency(self):
        subsystem = FlashChannelSubsystem(config())
        timing = subsystem.erase_block(0.0, 0, 1)
        assert timing.end >= config().erase_latency_ns


class TestInFlashOperation:
    def test_in_flash_op_occupies_die_not_channel(self):
        subsystem = FlashChannelSubsystem(config())
        timing = subsystem.in_flash_operation(0.0, 0, 0, duration_ns=1000.0)
        # Only the command crosses the channel.
        assert timing.channel_busy_ns < 1000.0
        assert timing.end >= 1000.0

    def test_uncontended_estimates_are_consistent(self):
        subsystem = FlashChannelSubsystem(config())
        read_estimate = subsystem.uncontended_read_latency()
        timing = subsystem.read_page(0.0, 0, 0)
        assert timing.latency == pytest.approx(read_estimate, rel=0.2)

    def test_channel_utilization_increases_with_traffic(self):
        subsystem = FlashChannelSubsystem(config())
        assert subsystem.channel_utilization(1000.0) == 0.0
        subsystem.read_page(0.0, 0, 0)
        assert subsystem.channel_utilization(1e5) > 0.0
