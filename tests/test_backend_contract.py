"""Backend contract suite: invariants every registered backend must hold.

Parametrized over several platform shapes (the default roster, a per-core
ISP roster, a CXL-PuD-grown roster) and, within each, over every backend
the registry holds -- so a future backend added to the platform's
configuration is covered automatically, without edits here.

Invariants (the properties the offload stack relies on):

* ``operation_latency`` is positive and monotone in ``size_bytes`` for
  every supported operation;
* ``operation_energy`` is non-negative;
* ``supports(op)`` is consistent with ``execute`` (supported operations
  execute and report positive latency; unsupported ones raise);
* ``utilization`` stays within [0, 1] before and after activity;
* identity plumbing: the home location is a real location, the queue
  carries the backend's identity, and the registry's roster matches the
  config-derived :func:`backend_roster` prediction.
"""

from __future__ import annotations

import pytest

from repro.common import (DataLocation, KIB, MIB, OpType, Resource,
                          RESOURCE_HOME_LOCATION, SSD_RESOURCES,
                          SimulationError)
from repro.core.platform import PlatformConfig, SSDPlatform, backend_roster
from repro.dram.cxl import CXLPuDConfig
from repro.ssd.config import small_ssd_config

#: Operation sample spanning every family (bitwise, arithmetic,
#: predication, memory, control) including ops some backends reject.
SAMPLE_OPS = (OpType.AND, OpType.XOR, OpType.ADD, OpType.MUL, OpType.DIV,
              OpType.CMP_LT, OpType.SELECT, OpType.COPY, OpType.GATHER,
              OpType.SCALAR)

ELEMENT_BITS = 32


def _shape_configs():
    base = dict(ssd=small_ssd_config(),
                dram_compute_window_bytes=1 * MIB,
                sram_window_bytes=256 * KIB,
                host_cache_bytes=1 * MIB)
    return {
        "default": PlatformConfig(**base),
        "multicore-isp": PlatformConfig(**base, isp_cores=3),
        "cxl-pud": PlatformConfig(**base, cxl_pud=CXLPuDConfig()),
        "grown-both": PlatformConfig(**base, isp_cores=2,
                                     cxl_pud=CXLPuDConfig()),
    }


@pytest.fixture(params=sorted(_shape_configs()))
def shaped_platform(request) -> SSDPlatform:
    return SSDPlatform(_shape_configs()[request.param])


class TestBackendContract:
    def test_roster_matches_config_prediction(self, shaped_platform):
        assert (shaped_platform.backends.roster() ==
                backend_roster(shaped_platform.config))

    def test_candidates_are_the_offloadable_backends(self, shaped_platform):
        candidates = shaped_platform.offload_candidates()
        for backend in shaped_platform.backends:
            assert ((backend.resource in candidates) ==
                    backend.offloadable), backend.resource

    def test_latency_positive_and_monotone_in_size(self, shaped_platform):
        for backend in shaped_platform.backends:
            for op in SAMPLE_OPS:
                if not backend.supports(op):
                    continue
                small = backend.operation_latency(op, 16 * KIB, ELEMENT_BITS)
                large = backend.operation_latency(op, 512 * KIB,
                                                  ELEMENT_BITS)
                assert small > 0, (backend.resource, op)
                assert large >= small, (backend.resource, op)

    def test_energy_non_negative(self, shaped_platform):
        for backend in shaped_platform.backends:
            for op in SAMPLE_OPS:
                if not backend.supports(op):
                    continue
                energy = backend.operation_energy(op, 16 * KIB, ELEMENT_BITS)
                assert energy >= 0, (backend.resource, op)

    def test_supports_consistent_with_execute(self, shaped_platform):
        for backend in shaped_platform.backends:
            for op in SAMPLE_OPS:
                if backend.supports(op):
                    timing = backend.execute(0.0, op, 16 * KIB, ELEMENT_BITS)
                    assert timing.latency_ns > 0, (backend.resource, op)
                else:
                    with pytest.raises(SimulationError):
                        backend.operation_latency(op, 16 * KIB, ELEMENT_BITS)

    def test_utilization_within_unit_interval(self, shaped_platform):
        horizon = 1e15  # longer than any activity the test generates
        for backend in shaped_platform.backends:
            assert backend.utilization(horizon) == 0.0, backend.resource
            op = next(op for op in SAMPLE_OPS if backend.supports(op))
            backend.execute(0.0, op, 64 * KIB, ELEMENT_BITS)
            value = backend.utilization(horizon)
            assert 0.0 <= value <= 1.0, backend.resource

    def test_identity_plumbing(self, shaped_platform):
        for backend in shaped_platform.backends:
            assert isinstance(backend.home_location, DataLocation)
            assert backend.queue.resource is backend.resource
            assert backend.kind in Resource
            assert backend.resource.value  # non-empty report key
            # In-SSD grouping follows the family.
            assert backend.resource.is_in_ssd == backend.kind.is_in_ssd


class TestDefaultRosterShape:
    """Golden safety net: the default roster is exactly the paper's."""

    def test_default_candidates_are_the_paper_trio(self):
        platform = SSDPlatform(_shape_configs()["default"])
        assert platform.offload_candidates() == SSD_RESOURCES
        assert platform.backends.roster() == (
            "isp", "pud-ssd", "ifp", "host-cpu", "host-gpu")

    def test_default_homes_match_the_paper(self):
        platform = SSDPlatform(_shape_configs()["default"])
        assert platform.home_location(Resource.IFP) is DataLocation.FLASH
        assert platform.home_location(Resource.ISP) is DataLocation.SSD_DRAM
        assert platform.home_location(Resource.PUD) is DataLocation.SSD_DRAM
        assert platform.home_location(Resource.HOST_CPU) is DataLocation.HOST
        # The documentation constant must track the live backends: every
        # canonical identity's backend homes where the paper says it does.
        for resource, home in RESOURCE_HOME_LOCATION.items():
            assert platform.home_location(resource) is home, resource

    def test_duplicate_registration_rejected(self):
        platform = SSDPlatform(_shape_configs()["default"])
        backend = platform.backends[Resource.ISP]
        with pytest.raises(SimulationError, match="already registered"):
            platform.backends.register(backend)

    def test_unknown_backend_lookup_is_actionable(self):
        platform = SSDPlatform(_shape_configs()["default"])
        with pytest.raises(SimulationError, match="registered backends"):
            platform.backends["no-such-backend"]

    def test_isp_cores_must_be_positive(self):
        with pytest.raises(SimulationError):
            SSDPlatform(PlatformConfig(ssd=small_ssd_config(), isp_cores=0))
