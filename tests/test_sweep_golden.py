"""Golden regression suite for the full-scale experiment sweeps.

Extends the pattern of ``tests/test_batched_movement.py`` to the sweep
engine: the complete Fig. 7 speedup and energy tables (serial execution,
``workload_scale = 0.25``, the shared experiment platform configuration)
are pinned as golden values, and a sharded ``sweep(parallel=True)`` must
reproduce them *exactly* -- bit-identical simulated time, energy and
per-instruction records, independent of worker count or completion order.

Also covers the two satellites that make the goldens trustworthy:

* determinism -- back-to-back runs of the same (workload, policy) pair on
  fresh platforms produce identical :class:`ExecutionResult` fields;
* :func:`make_policy` coverage -- every Fig. 5 / Fig. 7 policy name
  resolves, unknown names raise a clear :class:`ValueError`, and each
  registered policy picks a supported resource for a representative
  instruction.
"""

from __future__ import annotations

import math

import pytest

from repro.common import OpType, Resource
from repro.core.compiler.ir import ArrayRef, ArraySpec, VectorInstruction
from repro.core.layout import ArrayLayout
from repro.core.offload.features import FeatureCollector
from repro.core.offload.policies import (POLICY_REGISTRY, PolicyContext,
                                         make_policy)
from repro.experiments import (ExperimentConfig, ExperimentRunner,
                               FIG5_POLICIES, FIG7_POLICIES, energy_table,
                               execute_run_spec, run_experiment,
                               speedup_table)
from repro.experiments.runner import HOST_POLICIES
from repro.workloads import Jacobi1DWorkload, XORFilterWorkload

#: Workload scale the golden tables were recorded at (serial sweep, shared
#: experiment platform config).
GOLDEN_SCALE = 0.25

REL_TOL = 1e-9

#: Fig. 7(a): speedup over CPU per workload plus GMEAN, recorded from a
#: serial sweep of the run-batched engine at ``workload_scale = 0.25``.
GOLDEN_SPEEDUPS = {
    "AES": {
        "GPU": 3.7800568330504865,
        "ISP": 0.2901793449600227,
        "PuD-SSD": 3.2560981508416638,
        "Flash-Cosmos": 0.03922070323812673,
        "Ares-Flash": 0.257712402444218,
        "BW-Offloading": 0.22175466009994443,
        "DM-Offloading": 2.0886613871355784,
        "Conduit": 2.0886613871355784,
        "Ideal": 6.962028496618469,
    },
    "LLM Training": {
        "GPU": 1.0346386596013741,
        "ISP": 0.8327997080606637,
        "PuD-SSD": 1.033253987541686,
        "Flash-Cosmos": 0.8327997080606637,
        "Ares-Flash": 0.937150746396802,
        "BW-Offloading": 0.5504700653690731,
        "DM-Offloading": 0.6907241529276839,
        "Conduit": 1.8990107011660722,
        "Ideal": 45.60665058492698,
    },
    "LlaMA2 Inference": {
        "GPU": 1.1205393779638364,
        "ISP": 0.357361612917803,
        "PuD-SSD": 0.548866567804799,
        "Flash-Cosmos": 0.357361612917803,
        "Ares-Flash": 0.2396742539166676,
        "BW-Offloading": 0.10659937887293154,
        "DM-Offloading": 1.238337315872287,
        "Conduit": 0.4463732854508687,
        "Ideal": 11.831085737462091,
    },
    "XOR Filter": {
        "GPU": 1.0060125893168443,
        "ISP": 0.3336795390893052,
        "PuD-SSD": 0.4242110713340992,
        "Flash-Cosmos": 0.16764625093106852,
        "Ares-Flash": 0.09006822834576197,
        "BW-Offloading": 0.04962511819194152,
        "DM-Offloading": 0.35742635939541095,
        "Conduit": 0.3562343550457106,
        "Ideal": 2.742044080875656,
    },
    "heat-3d": {
        "GPU": 2.0644627172716135,
        "ISP": 0.3541732844319075,
        "PuD-SSD": 1.1560695764388653,
        "Flash-Cosmos": 0.3541732844319075,
        "Ares-Flash": 0.20319111597626804,
        "BW-Offloading": 0.20319111597626804,
        "DM-Offloading": 0.20319111597626804,
        "Conduit": 1.1852742290432672,
        "Ideal": 3.9784266021857198,
    },
    "jacobi-1d": {
        "GPU": 1.5002994624984014,
        "ISP": 0.46751106146607163,
        "PuD-SSD": 0.9962206127697493,
        "Flash-Cosmos": 0.46751106146607163,
        "Ares-Flash": 0.18921900332184644,
        "BW-Offloading": 0.18921900332184644,
        "DM-Offloading": 0.18921900332184644,
        "Conduit": 0.9660809217380913,
        "Ideal": 3.666365818383908,
    },
    "GMEAN": {
        "GPU": 1.5460270727773353,
        "ISP": 0.4103067904246966,
        "PuD-SSD": 0.9829893405148763,
        "Flash-Cosmos": 0.2620761876969207,
        "Ares-Flash": 0.2419178277819652,
        "BW-Offloading": 0.17080032501283346,
        "DM-Offloading": 0.5391106948170244,
        "Conduit": 0.9472042372229255,
        "Ideal": 7.2912450123519585,
    },
}

#: Fig. 7(b): total energy normalized to CPU per (workload, policy).
GOLDEN_ENERGY_TOTALS = {
    "AES": {
        "CPU": 1.0,
        "GPU": 0.18058801774102576,
        "ISP": 1.2573197769500213,
        "PuD-SSD": 0.11404704205374044,
        "Flash-Cosmos": 9.330601973171277,
        "Ares-Flash": 1.5391295131135008,
        "BW-Offloading": 1.636102235672957,
        "DM-Offloading": 0.1780964767501582,
        "Conduit": 0.1780964767501582,
        "Ideal": 0.051806504002716726,
    },
    "LLM Training": {
        "CPU": 1.0,
        "GPU": 0.5541668699815124,
        "ISP": 1.869495659600523,
        "PuD-SSD": 1.514599254190956,
        "Flash-Cosmos": 1.869495659600523,
        "Ares-Flash": 1.7198402501419732,
        "BW-Offloading": 2.8297076147426425,
        "DM-Offloading": 2.2793074753447633,
        "Conduit": 0.8914419789126048,
        "Ideal": 0.03279876613176464,
    },
    "LlaMA2 Inference": {
        "CPU": 1.0,
        "GPU": 0.3015432237000646,
        "ISP": 1.5097974836389323,
        "PuD-SSD": 0.9956079273363828,
        "Flash-Cosmos": 1.5097974836389323,
        "Ares-Flash": 2.465465159793487,
        "BW-Offloading": 5.023461294370234,
        "DM-Offloading": 0.7052792036558005,
        "Conduit": 1.259699153946541,
        "Ideal": 0.04486426374461373,
    },
    "XOR Filter": {
        "CPU": 1.0,
        "GPU": 1.1934308776406868,
        "ISP": 1.2227940886070585,
        "PuD-SSD": 0.9605839419292227,
        "Flash-Cosmos": 2.3862075870134904,
        "Ares-Flash": 4.467974424420038,
        "BW-Offloading": 7.958222641334033,
        "DM-Offloading": 1.1430436474821513,
        "Conduit": 1.1467385298351118,
        "Ideal": 0.14357254901874225,
    },
    "heat-3d": {
        "CPU": 1.0,
        "GPU": 0.13077018505374108,
        "ISP": 1.4778226308667377,
        "PuD-SSD": 0.4513266022352887,
        "Flash-Cosmos": 1.4778226308667377,
        "Ares-Flash": 2.876431038893103,
        "BW-Offloading": 2.876431038893103,
        "DM-Offloading": 2.876431038893103,
        "Conduit": 0.4427686375945858,
        "Ideal": 0.13008803977710884,
    },
    "jacobi-1d": {
        "CPU": 1.0,
        "GPU": 0.1957752625205344,
        "ISP": 1.6080287583123698,
        "PuD-SSD": 0.7529810740636163,
        "Flash-Cosmos": 1.6080287583123698,
        "Ares-Flash": 4.194067939775689,
        "BW-Offloading": 4.194067939775689,
        "DM-Offloading": 4.194067939775689,
        "Conduit": 0.7774039160528293,
        "Ideal": 0.20222080690380662,
    },
}

#: Fig. 7(b): Conduit's data-movement energy share, normalized to CPU.
GOLDEN_CONDUIT_ENERGY_DM = {
    "AES": 0.003523290153591617,
    "LLM Training": 0.06611566565856777,
    "LlaMA2 Inference": 0.060084160168146744,
    "XOR Filter": 0.022191883313081695,
    "heat-3d": 0.0047533101921792605,
    "jacobi-1d": 0.009813275596427997,
}


def assert_close(label: str, got: float, expected: float) -> None:
    assert math.isclose(got, expected, rel_tol=REL_TOL, abs_tol=1e-12), (
        f"{label} diverged: got {got!r}, expected {expected!r}")


def assert_tables_match_golden(results) -> None:
    policies = [policy for policy in FIG7_POLICIES if policy != "CPU"]
    speedups = speedup_table(results, policies)
    assert set(speedups) == set(GOLDEN_SPEEDUPS)
    for workload, row in GOLDEN_SPEEDUPS.items():
        assert set(speedups[workload]) == set(row)
        for policy, expected in row.items():
            assert_close(f"speedup[{workload}][{policy}]",
                         speedups[workload][policy], expected)
    energy = energy_table(results, FIG7_POLICIES)
    for workload, row in GOLDEN_ENERGY_TOTALS.items():
        for policy, expected in row.items():
            assert_close(f"energy[{workload}][{policy}]",
                         energy[workload][policy]["total"], expected)
    for workload, expected in GOLDEN_CONDUIT_ENERGY_DM.items():
        assert_close(f"energy-dm[{workload}][Conduit]",
                     energy[workload]["Conduit"]["data_movement"], expected)


@pytest.fixture(scope="module")
def golden_config() -> ExperimentConfig:
    # Platform defaults to the shared experiment_platform_config(); the
    # goldens must be re-pinned if that configuration ever changes.
    return ExperimentConfig(workload_scale=GOLDEN_SCALE)


@pytest.fixture(scope="module")
def serial_results(golden_config):
    return ExperimentRunner(golden_config).sweep(FIG7_POLICIES)


class TestFig7Goldens:
    def test_serial_sweep_reproduces_goldens(self, serial_results):
        assert_tables_match_golden(serial_results)

    def test_parallel_sweep_is_bit_identical_to_serial(self, golden_config,
                                                       serial_results):
        # Two workers even on a single-CPU machine, so the process-pool
        # path (pickling, worker-side reconstruction, order reassembly)
        # is genuinely exercised rather than falling back in-process.
        parallel = ExperimentRunner(golden_config).sweep(
            FIG7_POLICIES, parallel=True, workers=2)
        assert list(parallel) == list(serial_results)
        for key, serial in serial_results.items():
            shard = parallel[key]
            assert shard.total_time_ns == serial.total_time_ns, key
            assert shard.total_energy_nj == serial.total_energy_nj, key
            assert shard.energy.compute_nj == serial.energy.compute_nj, key
            assert (shard.energy.data_movement_nj ==
                    serial.energy.data_movement_nj), key
            assert len(shard.records) == len(serial.records), key
            for ours, theirs in zip(shard.records, serial.records):
                assert ours.resource is theirs.resource, key
                assert ours.end_ns == theirs.end_ns, key
        assert_tables_match_golden(parallel)

    def test_goldens_pin_the_uncorrected_cost_model(self, golden_config):
        # The contention-aware feedback is opt-in (the `*-feedback`
        # platform variants); the shared experiment platform leaves it
        # off, which is what keeps every table in this file bit-exact.
        # Re-pin the goldens if this default ever flips.
        assert golden_config.platform.contention_feedback is False

    def test_run_experiment_engine_reproduces_goldens(self, golden_config,
                                                      serial_results):
        # The declarative experiment API must be a pure re-plumbing: the
        # registered ``fig7`` definition, executed by the shared
        # run_experiment() engine on the ``default`` platform variant,
        # reproduces the pinned tables bit-exactly.
        result = run_experiment("fig7", golden_config, parallel=False)
        grid = result.platform_grid("default")
        assert list(grid) == list(serial_results)
        for key, serial in serial_results.items():
            assert grid[key].total_time_ns == serial.total_time_ns, key
            assert grid[key].total_energy_nj == serial.total_energy_nj, key
        assert_tables_match_golden(grid)
        assert set(result.sections) == {"fig7a", "fig7b"}


class TestDeterminism:
    @pytest.mark.parametrize("policy", ["CPU", "Conduit", "DM-Offloading"])
    def test_back_to_back_runs_are_identical(self, policy):
        config = ExperimentConfig(workload_scale=0.05)
        runner = ExperimentRunner(config)
        workload = XORFilterWorkload(scale=0.05)
        first = runner.run(workload, policy)
        second = runner.run(workload, policy)
        assert first.total_time_ns == second.total_time_ns
        assert first.total_energy_nj == second.total_energy_nj
        assert first.energy.compute_nj == second.energy.compute_nj
        assert (first.energy.data_movement_nj ==
                second.energy.data_movement_nj)
        assert (first.breakdown.as_dict() == second.breakdown.as_dict())
        assert first.offload_overhead_avg_ns == second.offload_overhead_avg_ns
        assert len(first.records) == len(second.records)
        for ours, theirs in zip(first.records, second.records):
            assert (ours.uid, ours.op, ours.resource) == \
                (theirs.uid, theirs.op, theirs.resource)
            assert ours.dispatch_ns == theirs.dispatch_ns
            assert ours.end_ns == theirs.end_ns
            assert ours.data_movement_ns == theirs.data_movement_ns

    def test_worker_path_matches_fresh_process_state(self):
        # A worker reconstructs the workload from (name, scale); the
        # result must match the parent's in-process execution exactly.
        config = ExperimentConfig(workload_scale=0.05)
        runner = ExperimentRunner(config)
        workload = Jacobi1DWorkload(scale=0.05)
        in_process = runner.run(workload, "Conduit")
        spec = runner.spec_for(workload, "Conduit")
        from_spec = execute_run_spec(spec)
        assert in_process.total_time_ns == from_spec.total_time_ns
        assert in_process.total_energy_nj == from_spec.total_energy_nj
        assert len(in_process.records) == len(from_spec.records)


class TestMakePolicyCoverage:
    def test_every_fig_policy_name_resolves(self):
        for name in set(FIG7_POLICIES) | set(FIG5_POLICIES):
            if name in HOST_POLICIES:
                continue  # host baselines run through HostRuntime
            assert make_policy(name).name == name

    def test_host_policies_are_the_expected_baselines(self):
        assert set(HOST_POLICIES) == {"CPU", "GPU"}
        assert set(HOST_POLICIES) <= set(FIG7_POLICIES)
        assert set(HOST_POLICIES) - {"GPU"} <= set(FIG5_POLICIES)

    def test_unknown_name_raises_clear_value_error(self):
        with pytest.raises(ValueError, match="unknown offloading policy"):
            make_policy("Conduits")
        with pytest.raises(ValueError, match="Conduit"):
            # The message lists the known policies.
            make_policy("nonsense")

    @pytest.mark.parametrize("op", [OpType.ADD, OpType.XOR])
    def test_every_policy_chooses_a_supported_resource(self, platform, op):
        layout = ArrayLayout(platform.page_size)
        layout.place(ArraySpec("a", 1 << 20, 32))
        platform.setup_dataset(layout.all_lpas())
        collector = FeatureCollector(platform, layout)
        instruction = VectorInstruction(
            uid=0, op=op, dest=ArrayRef("a", 0, 4096),
            sources=(ArrayRef("a", 4096, 4096),))
        features = collector.collect(instruction, 0.0, 0.0)
        context = PolicyContext(platform=platform, now=0.0, elapsed=1000.0)
        for name in POLICY_REGISTRY:
            choice = make_policy(name).choose(instruction, features, context)
            assert isinstance(choice, Resource), name
            assert features.feature(choice).supported, (name, op)
