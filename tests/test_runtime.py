"""End-to-end tests: offloader + runtimes executing whole programs."""

import pytest

from repro.common import MIB, OpType, Resource
from repro.core.metrics import energy_reduction, geometric_mean, speedup
from repro.core.offload.policies import make_policy
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.core.runtime import ConduitRuntime, HostRuntime, RuntimeConfig
from repro.ssd.config import small_ssd_config


def run(program, policy_name, platform_config):
    platform = SSDPlatform(platform_config)
    if policy_name in ("CPU", "GPU"):
        device = (Resource.HOST_CPU if policy_name == "CPU"
                  else Resource.HOST_GPU)
        return HostRuntime(platform).execute(program, device)
    return ConduitRuntime(platform).execute(program,
                                            make_policy(policy_name))


class TestConduitRuntime:
    def test_executes_every_instruction(self, tiny_vector_program,
                                        platform_config):
        result = run(tiny_vector_program, "Conduit", platform_config)
        assert result.instructions == len(tiny_vector_program)
        assert result.total_time_ns > 0
        assert result.total_energy_nj > 0

    def test_dependencies_are_respected(self, tiny_vector_program,
                                        platform_config):
        result = run(tiny_vector_program, "Conduit", platform_config)
        completion = {record.uid: record.end_ns for record in result.records}
        for instruction in tiny_vector_program.instructions:
            for dep in instruction.depends_on:
                assert completion[dep] <= \
                    completion[instruction.uid] + 1e-6

    def test_records_are_internally_consistent(self, tiny_vector_program,
                                               platform_config):
        result = run(tiny_vector_program, "Conduit", platform_config)
        for record in result.records:
            assert record.end_ns >= record.start_ns >= 0
            assert record.latency_ns >= record.compute_ns
            assert record.queue_wait_ns >= 0

    def test_only_ssd_resources_are_used(self, tiny_vector_program,
                                         platform_config):
        result = run(tiny_vector_program, "Conduit", platform_config)
        assert all(record.resource.is_in_ssd for record in result.records)

    def test_isp_only_policy_uses_only_isp(self, tiny_vector_program,
                                           platform_config):
        result = run(tiny_vector_program, "ISP", platform_config)
        fractions = result.ssd_resource_fractions()
        assert fractions[Resource.ISP] == pytest.approx(1.0)

    def test_ideal_is_fastest(self, tiny_vector_program, platform_config):
        ideal = run(tiny_vector_program, "Ideal", platform_config)
        for policy in ("Conduit", "ISP", "DM-Offloading"):
            other = run(tiny_vector_program, policy, platform_config)
            assert ideal.total_time_ns <= other.total_time_ns

    def test_offload_overhead_within_paper_band(self, tiny_vector_program,
                                                platform_config):
        result = run(tiny_vector_program, "Conduit", platform_config)
        # Paper: 3.77 us average, up to 33 us.
        assert 0.5 < result.offload_overhead_avg_ns / 1000.0 < 40.0

    def test_binary_transfer_adds_setup_time(self, tiny_vector_program,
                                             platform_config):
        platform = SSDPlatform(platform_config)
        config = RuntimeConfig(transfer_binary=True)
        with_transfer = ConduitRuntime(platform, config).execute(
            tiny_vector_program, make_policy("Conduit"))
        assert platform.ssd.nvme.latest_binary is not None
        assert with_transfer.total_time_ns > 0

    def test_empty_program_rejected(self, platform_config):
        from repro.core.compiler.ir import VectorProgram
        runtime = ConduitRuntime(SSDPlatform(platform_config))
        with pytest.raises(Exception):
            runtime.execute(VectorProgram("empty"), make_policy("Conduit"))

    def test_ssd_returns_to_regular_io_mode(self, tiny_vector_program,
                                            platform_config):
        platform = SSDPlatform(platform_config)
        ConduitRuntime(platform).execute(tiny_vector_program,
                                         make_policy("Conduit"))
        from repro.ssd.nvme import SSDMode
        assert platform.ssd.mode is SSDMode.REGULAR_IO


class TestHostRuntime:
    def test_cpu_execution(self, tiny_vector_program, platform_config):
        result = run(tiny_vector_program, "CPU", platform_config)
        assert result.policy == "CPU"
        assert all(record.resource is Resource.HOST_CPU
                   for record in result.records)
        assert result.breakdown.host_data_movement_ns > 0

    def test_gpu_rejects_non_host_device(self, tiny_vector_program,
                                         platform_config):
        runtime = HostRuntime(SSDPlatform(platform_config))
        with pytest.raises(Exception):
            runtime.execute(tiny_vector_program, Resource.IFP)

    def test_host_energy_includes_pcie_movement(self, tiny_vector_program,
                                                platform_config):
        result = run(tiny_vector_program, "CPU", platform_config)
        assert result.energy.per_transfer_kind_nj.get("pcie", 0.0) > 0


class TestMetricsHelpers:
    def test_speedup_and_energy_reduction(self, tiny_vector_program,
                                          platform_config):
        cpu = run(tiny_vector_program, "CPU", platform_config)
        ideal = run(tiny_vector_program, "Ideal", platform_config)
        assert speedup(cpu, ideal) > 1.0
        assert energy_reduction(cpu, ideal) > 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_tail_latency_percentiles_ordered(self, tiny_vector_program,
                                              platform_config):
        result = run(tiny_vector_program, "Conduit", platform_config)
        assert result.p9999_latency_ns >= result.p99_latency_ns > 0

    def test_timeline_shape(self, tiny_vector_program, platform_config):
        result = run(tiny_vector_program, "Conduit", platform_config)
        timeline = result.timeline(limit=10)
        assert len(timeline) == 10
        assert {"index", "uid", "op", "resource", "start_ns",
                "end_ns"} <= set(timeline[0])
