"""Tests for the compile-time IR, frontend, vectorizer and binary encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import LatencyClass, OpType, SimulationError
from repro.core.compiler.binary import (BinaryDecoder, BinaryEncoder,
                                        estimate_binary_bytes)
from repro.core.compiler.frontend import (Loop, ScalarProgram, ScalarSection,
                                          ScalarStatement)
from repro.core.compiler.ir import (ArrayRef, ArraySpec, VectorInstruction,
                                    VectorProgram)
from repro.core.compiler.vectorizer import AutoVectorizer, VectorizerConfig


class TestIR:
    def test_array_ref_overlap(self):
        a = ArrayRef("x", 0, 100)
        b = ArrayRef("x", 50, 100)
        c = ArrayRef("x", 100, 10)
        d = ArrayRef("y", 0, 100)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert not a.overlaps(d)

    def test_instruction_size_bytes(self):
        instruction = VectorInstruction(uid=0, op=OpType.ADD, dest=None,
                                        sources=(), vector_length=4096,
                                        element_bits=32)
        assert instruction.size_bytes == 16 * 1024

    def test_metadata_auto_populated(self):
        instruction = VectorInstruction(uid=0, op=OpType.MUL, dest=None,
                                        sources=(), vector_length=128,
                                        element_bits=8)
        assert instruction.metadata.latency_class is LatencyClass.HIGH
        assert instruction.metadata.operand_bytes == 128

    def test_invalid_element_width_rejected(self):
        with pytest.raises(SimulationError):
            VectorInstruction(uid=0, op=OpType.ADD, dest=None, sources=(),
                              vector_length=4, element_bits=12)

    def test_program_rejects_undeclared_arrays(self):
        program = VectorProgram("p", [ArraySpec("a", 1024, 32)])
        with pytest.raises(SimulationError):
            program.add(VectorInstruction(
                uid=0, op=OpType.ADD, dest=ArrayRef("missing", 0, 4),
                sources=()))

    def test_validate_rejects_forward_dependencies(self):
        program = VectorProgram("p", [ArraySpec("a", 8192, 32)])
        program.add(VectorInstruction(uid=0, op=OpType.ADD,
                                      dest=ArrayRef("a", 0, 4), sources=(),
                                      vector_length=4, depends_on=(5,)))
        with pytest.raises(SimulationError):
            program.validate()

    def test_validate_rejects_out_of_bounds_refs(self):
        program = VectorProgram("p", [ArraySpec("a", 100, 32)])
        program.add(VectorInstruction(uid=0, op=OpType.ADD,
                                      dest=ArrayRef("a", 90, 20), sources=(),
                                      vector_length=20))
        with pytest.raises(SimulationError):
            program.validate()

    def test_op_histogram_and_latency_mix(self, manual_vector_program):
        histogram = manual_vector_program.op_histogram()
        assert histogram[OpType.AND] == 1
        mix = manual_vector_program.latency_class_mix()
        assert mix[LatencyClass.HIGH] == pytest.approx(1 / 3)


class TestFrontend:
    def test_undeclared_array_in_loop_rejected(self):
        program = ScalarProgram("p")
        with pytest.raises(SimulationError):
            program.add_loop(Loop("l", 100, [
                ScalarStatement(op=OpType.ADD, dest="missing",
                                sources=())]))

    def test_loop_operation_counts(self):
        program = ScalarProgram("p")
        program.declare_array("a", 1000)
        loop = Loop("l", 1000, [ScalarStatement(op=OpType.ADD, dest="a",
                                                sources=("a",))],
                    repetitions=3)
        program.add_loop(loop)
        assert loop.scalar_operations == 3000
        assert program.total_scalar_operations() == 3000

    def test_vectorizability_rules(self):
        body = [ScalarStatement(op=OpType.ADD, dest=None, sources=())]
        assert Loop("ok", 1000, body).is_fully_vectorizable(64)
        assert not Loop("dep", 1000, body,
                        loop_carried_dependence=True
                        ).is_fully_vectorizable(64)
        assert not Loop("small", 8, body).is_fully_vectorizable(64)
        control = Loop("ctrl", 1000, body, complex_control_flow=True)
        assert not control.is_fully_vectorizable(64)
        assert control.is_partially_vectorizable(64)

    def test_static_operations(self):
        from repro.core.compiler.frontend import STATIC_OPS_PER_STATEMENT
        program = ScalarProgram("p")
        program.declare_array("a", 100)
        program.add_loop(Loop("l", 100, [
            ScalarStatement(op=OpType.ADD, dest="a", sources=("a",)),
            ScalarStatement(op=OpType.MUL, dest="a", sources=("a",))]))
        program.add_scalar_section(ScalarSection("s", 50,
                                                 static_operations=8))
        assert program.loop_static_operations() == \
            2 * STATIC_OPS_PER_STATEMENT
        assert program.total_static_operations() == \
            2 * STATIC_OPS_PER_STATEMENT + 8


class TestVectorizer:
    def vectorize(self, program, **kwargs):
        return AutoVectorizer(VectorizerConfig(**kwargs)).vectorize(program)

    def test_fully_vectorizable_loop(self, tiny_scalar_program):
        program, report = self.vectorize(tiny_scalar_program)
        assert len(program) > 0
        assert report.vectorizable_fraction == pytest.approx(1.0)
        assert all(remark.vectorized for remark in report.remarks)

    def test_dependencies_reference_earlier_instructions(self,
                                                         tiny_vector_program):
        tiny_vector_program.validate()
        seen = set()
        for instruction in tiny_vector_program.instructions:
            for dep in instruction.depends_on:
                assert dep in seen
            seen.add(instruction.uid)

    def test_chunks_cover_the_whole_array(self, tiny_scalar_program):
        program, _ = self.vectorize(tiny_scalar_program)
        covered = set()
        for instruction in program.instructions:
            if instruction.dest is not None and instruction.dest.array == "b":
                covered.update(range(instruction.dest.offset,
                                     instruction.dest.end))
        assert len(covered) == 64 * 1024

    def test_narrow_elements_pack_wider_vectors(self):
        program = ScalarProgram("int8")
        program.declare_array("a", 65536, element_bits=8)
        program.add_loop(Loop("l", 65536, [
            ScalarStatement(op=OpType.ADD, dest="a", sources=("a",))]))
        vectorized, _ = self.vectorize(program)
        # 4096 x 32-bit = 16 KiB = 16384 INT8 elements per instruction.
        assert vectorized.instructions[0].vector_length == 16384
        assert len(vectorized.vector_instructions) == 4

    def test_loop_carried_dependence_stays_scalar(self):
        program = ScalarProgram("rec")
        program.declare_array("a", 100000)
        program.add_loop(Loop("rec", 100000, [
            ScalarStatement(op=OpType.ADD, dest="a", sources=("a",))],
            loop_carried_dependence=True))
        vectorized, report = self.vectorize(program)
        assert all(i.op is OpType.SCALAR for i in vectorized.instructions)
        assert report.vectorizable_fraction == 0.0

    def test_control_flow_is_partially_vectorized_with_predication(self):
        program = ScalarProgram("branchy")
        program.declare_array("a", 100000)
        program.add_loop(Loop("branchy", 100000, [
            ScalarStatement(op=OpType.ADD, dest="a", sources=("a",))],
            complex_control_flow=True))
        vectorized, report = self.vectorize(program)
        assert any(i.op is OpType.SELECT for i in vectorized.instructions)
        assert any(r.partial for r in report.remarks)

    def test_partial_vectorization_can_be_disabled(self):
        program = ScalarProgram("branchy")
        program.declare_array("a", 100000)
        program.add_loop(Loop("branchy", 100000, [
            ScalarStatement(op=OpType.ADD, dest="a", sources=("a",))],
            complex_control_flow=True))
        vectorized, _ = self.vectorize(
            program, enable_partial_vectorization=False)
        assert all(i.op is OpType.SCALAR for i in vectorized.instructions)

    def test_scalar_sections_chain_in_order(self):
        program = ScalarProgram("control")
        program.add_scalar_section(ScalarSection("s", 10000))
        vectorized, _ = self.vectorize(program)
        scalars = vectorized.instructions
        assert len(scalars) == 3
        assert scalars[1].depends_on == (scalars[0].uid,)

    def test_stencil_offsets_create_cross_sweep_dependencies(self):
        program = ScalarProgram("stencil")
        program.declare_array("a", 32768)
        program.declare_array("b", 32768)
        program.add_loop(Loop("sweep", 32768, [
            ScalarStatement(op=OpType.ADD, dest="b", sources=("a", "a"),
                            source_offsets=(-1, 1)),
            ScalarStatement(op=OpType.ADD, dest="a", sources=("b",))],
            repetitions=2))
        vectorized, _ = self.vectorize(program)
        second_sweep = [i for i in vectorized.instructions
                        if i.uid >= len(vectorized.instructions) // 2]
        assert any(i.depends_on for i in second_sweep)


class TestBinary:
    def test_round_trip(self, tiny_vector_program):
        binary = BinaryEncoder().encode(tiny_vector_program)
        decoded = BinaryDecoder().decode(binary)
        assert len(decoded) == len(tiny_vector_program)
        for original, restored in zip(tiny_vector_program.instructions,
                                      decoded.instructions):
            assert original.uid == restored.uid
            assert original.op is restored.op
            assert original.vector_length == restored.vector_length
            assert original.depends_on == restored.depends_on
            assert original.dest == restored.dest

    def test_size_estimate_close_to_actual(self, tiny_vector_program):
        binary = BinaryEncoder().encode(tiny_vector_program)
        estimate = estimate_binary_bytes(tiny_vector_program)
        assert estimate == pytest.approx(binary.size_bytes, rel=0.25)

    def test_checksum_changes_with_content(self, tiny_vector_program,
                                           manual_vector_program):
        encoder = BinaryEncoder()
        assert (encoder.encode(tiny_vector_program).checksum !=
                encoder.encode(manual_vector_program).checksum)

    def test_decoder_rejects_garbage(self):
        from repro.core.compiler.binary import ConduitBinary
        with pytest.raises(SimulationError):
            BinaryDecoder().decode(ConduitBinary("x", b"NOPE" + b"\0" * 16, 0))

    @given(st.lists(st.sampled_from([OpType.ADD, OpType.XOR, OpType.MUL]),
                    min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_arbitrary_op_sequences(self, ops):
        program = VectorProgram("fuzz", [ArraySpec("a", 1 << 20, 32)])
        for index, op in enumerate(ops):
            offset = (index * 4096) % (1 << 19)
            program.add(VectorInstruction(
                uid=index, op=op, dest=ArrayRef("a", offset, 4096),
                sources=(ArrayRef("a", offset, 4096),),
                depends_on=(index - 1,) if index else ()))
        decoded = BinaryDecoder().decode(BinaryEncoder().encode(program))
        assert [i.op for i in decoded.instructions] == ops
