"""Tests for the ISP, IFP and host compute models."""

import pytest

from repro.common import KIB, OpType, SimulationError
from repro.host.cpu import HostCPU
from repro.host.gpu import HostGPU
from repro.ifp.aresflash import AresFlashUnit
from repro.ifp.flashcosmos import FlashCosmosUnit
from repro.ifp.isa import (ARES_FLASH_OPS, FLASH_COSMOS_OPS,
                           IFP_SUPPORTED_OPS, primitive)
from repro.ifp.unit import IFPUnit
from repro.isp.core import EmbeddedCoreComplex
from repro.isp.isa import cycles_per_beat, mnemonic


class TestISP:
    def test_supports_everything(self):
        isp = EmbeddedCoreComplex()
        for op in OpType:
            assert isp.supports(op)

    def test_latency_scales_with_size(self):
        isp = EmbeddedCoreComplex()
        assert (isp.operation_latency(OpType.ADD, 32 * KIB, 32) >
                isp.operation_latency(OpType.ADD, 16 * KIB, 32))

    def test_multiplication_slower_than_addition(self):
        isp = EmbeddedCoreComplex()
        assert (isp.operation_latency(OpType.MUL, 16 * KIB, 32) >
                isp.operation_latency(OpType.ADD, 16 * KIB, 32))

    def test_throughput_is_limited_by_narrow_simd(self):
        # A 16 KiB ADD should take on the order of microseconds on the
        # controller core (the limitation Section 2.2 highlights), far more
        # than PuD-SSD's tens of bbop steps.
        isp = EmbeddedCoreComplex()
        latency = isp.operation_latency(OpType.ADD, 16 * KIB, 8)
        assert latency > 5_000.0  # > 5 us

    def test_invalid_size_raises(self):
        with pytest.raises(SimulationError):
            EmbeddedCoreComplex().operation_latency(OpType.ADD, 0, 32)

    def test_every_op_has_a_mnemonic_and_cycles(self):
        for op in OpType:
            assert mnemonic(op)
            assert cycles_per_beat(op) > 0

    def test_execute_tracks_energy(self):
        isp = EmbeddedCoreComplex()
        isp.execute(0.0, OpType.XOR, 16 * KIB, 8)
        assert isp.energy_nj > 0
        assert isp.operations == 1


class TestFlashCosmos:
    def test_supported_set(self):
        unit = FlashCosmosUnit()
        for op in FLASH_COSMOS_OPS:
            assert unit.supports(op)
        assert not unit.supports(OpType.MUL)

    def test_and_up_to_48_operands_in_one_sensing(self):
        unit = FlashCosmosUnit()
        assert unit.sensing_rounds(OpType.AND, 48) == 1
        assert unit.sensing_rounds(OpType.AND, 49) == 2

    def test_or_limited_to_4_operands_per_sensing(self):
        unit = FlashCosmosUnit()
        assert unit.sensing_rounds(OpType.OR, 4) == 1
        assert unit.sensing_rounds(OpType.OR, 8) == 2

    def test_latency_dominated_by_sensing(self):
        unit = FlashCosmosUnit()
        operation = unit.operation(OpType.AND, 2)
        assert operation.latency_ns >= unit.nand.read_latency_ns

    def test_xor_slower_than_and(self):
        unit = FlashCosmosUnit()
        assert (unit.operation(OpType.XOR, 2).latency_ns >
                unit.operation(OpType.AND, 2).latency_ns)

    def test_unsupported_raises(self):
        with pytest.raises(SimulationError):
            FlashCosmosUnit().sensing_rounds(OpType.ADD, 2)


class TestAresFlash:
    def test_supports_arithmetic_only(self):
        unit = AresFlashUnit()
        for op in ARES_FLASH_OPS:
            assert unit.supports(op)
        assert not unit.supports(OpType.AND)

    def test_multiplication_requires_controller_transfers(self):
        unit = AresFlashUnit()
        add = unit.operation(OpType.ADD, element_bits=8)
        mul = unit.operation(OpType.MUL, element_bits=8)
        assert add.controller_transfers == 0
        assert mul.controller_transfers == 8
        assert mul.latency_ns > add.latency_ns

    def test_wider_elements_cost_more(self):
        unit = AresFlashUnit()
        assert (unit.operation(OpType.ADD, 16).latency_ns >
                unit.operation(OpType.ADD, 8).latency_ns)

    def test_invalid_width_raises(self):
        with pytest.raises(SimulationError):
            AresFlashUnit().operation(OpType.ADD, element_bits=0)


class TestIFPUnit:
    def test_nine_supported_operations(self):
        assert len(IFP_SUPPORTED_OPS) == 9
        for op in IFP_SUPPORTED_OPS:
            assert primitive(op)

    def test_die_parallelism_matches_geometry(self):
        unit = IFPUnit()
        assert unit.die_parallelism == (unit.nand.channels *
                                        unit.nand.dies_per_channel)

    def test_pages_beyond_die_count_serialize(self):
        unit = IFPUnit()
        one_wave = unit.operation_latency(
            OpType.AND, unit.die_parallelism * unit.page_bytes, 8)
        two_waves = unit.operation_latency(
            OpType.AND, 2 * unit.die_parallelism * unit.page_bytes, 8)
        assert two_waves == pytest.approx(2 * one_wave)

    def test_unsupported_operation_raises(self):
        with pytest.raises(SimulationError):
            IFPUnit().operation_latency(OpType.SELECT, 16 * KIB, 8)

    def test_execute_routes_to_correct_subunit(self):
        unit = IFPUnit()
        unit.execute(0.0, OpType.AND, 16 * KIB, 8)
        unit.execute(0.0, OpType.ADD, 16 * KIB, 8)
        assert unit.flash_cosmos.operations >= 1
        assert unit.ares_flash.operations >= 1
        assert unit.energy_nj > 0


class TestHostModels:
    def test_cpu_memory_bound_for_bulk_bitwise(self):
        cpu = HostCPU()
        timing = cpu.execute(0.0, OpType.XOR, 64 * KIB, 8)
        assert timing.memory_ns >= timing.compute_ns

    def test_cpu_latency_scales_with_size(self):
        cpu = HostCPU()
        assert (cpu.operation_latency(OpType.ADD, 64 * KIB, 32) >
                cpu.operation_latency(OpType.ADD, 16 * KIB, 32))

    def test_cpu_invalid_size_raises(self):
        with pytest.raises(SimulationError):
            HostCPU().operation_latency(OpType.ADD, 0, 32)

    def test_gpu_faster_than_cpu_for_data_parallel_ops(self):
        cpu, gpu = HostCPU(), HostGPU()
        size = 1 << 20
        assert (gpu.operation_latency(OpType.MUL, size, 8) <
                cpu.operation_latency(OpType.MUL, size, 8))

    def test_gpu_scalar_code_does_not_parallelize(self):
        gpu = HostGPU()
        scalar = gpu.operation_latency(OpType.SCALAR, 16 * KIB, 32)
        vector = gpu.operation_latency(OpType.ADD, 16 * KIB, 32)
        assert scalar > vector

    def test_gpu_energy_reflects_high_power(self):
        gpu = HostGPU()
        gpu.execute(0.0, OpType.MUL, 1 << 20, 8)
        assert gpu.energy_nj > 0
