"""Tests for the declarative experiment API and the ``python -m repro`` CLI.

Covers the three objects the API redesign introduced:

* the platform-variant registry (``PLATFORM_VARIANTS``), including
  user-registered variants and unknown-name error messages;
* the platform axis of ``ExperimentRunner.sweep`` -- cross-product grids,
  serial == parallel bit-identity, label-free cache keys shared across
  variants and experiments;
* the experiment registry + ``run_experiment`` engine + CLI -- a smoke run
  of every registered experiment at tiny scale through ``repro run``,
  multi-platform section grids, sweep-stats surfacing (``-v``), JSON
  output and unknown-experiment/variant exit paths.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.__main__ import main as cli_main
from repro.common import MIB
from repro.core.platform import PlatformConfig, backend_roster
from repro.dram.cxl import CXLPuDConfig
from repro.experiments import (EXPERIMENT_REGISTRY, ExperimentConfig,
                               ExperimentDef, ExperimentRunner,
                               available_experiments,
                               available_platform_variants, experiment_def,
                               per_platform, platform_variant,
                               register_experiment,
                               register_platform_variant, run_experiment,
                               run_spec_key)
from repro.experiments.registry import RESULT_SCHEMA_VERSION
from repro.experiments.platforms import (MULTICORE_ISP_CORES,
                                         PLATFORM_VARIANTS)
from repro.ssd.config import small_ssd_config
from repro.workloads import Jacobi1DWorkload

TINY_SCALE = 0.03

#: Scale the CLI smoke runs use (full experiment platform, so keep small).
CLI_SCALE = 0.05


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    platform = PlatformConfig(ssd=small_ssd_config(),
                              dram_compute_window_bytes=1 * MIB,
                              sram_window_bytes=256 * 1024,
                              host_cache_bytes=1 * MIB)
    return ExperimentConfig(workload_scale=TINY_SCALE, platform=platform)


@pytest.fixture(scope="module")
def cli_cache_dir(tmp_path_factory) -> str:
    """One cache shared by every CLI smoke run, so common pairs run once."""
    return str(tmp_path_factory.mktemp("cli_sweep_cache"))


def result_fingerprint(result):
    return (result.workload, result.policy, result.total_time_ns,
            result.total_energy_nj, result.energy.compute_nj,
            result.energy.data_movement_nj,
            tuple((r.uid, r.op, r.resource, r.dispatch_ns, r.end_ns)
                  for r in result.records))


class TestPlatformVariants:
    def test_builtin_variants_registered(self):
        names = available_platform_variants()
        assert ("default", "multicore-isp", "cxl-pud") == names[:3]

    def test_default_variant_is_identity(self, tiny_config):
        assert platform_variant(
            "default", base=tiny_config.platform) == tiny_config.platform

    def test_multicore_variant_grows_isp_cores(self, tiny_config):
        grown = platform_variant("multicore-isp", base=tiny_config.platform)
        assert grown.isp_cores == MULTICORE_ISP_CORES
        assert any(name.startswith("isp[") for name in backend_roster(grown))

    def test_cxl_variant_enables_the_tier(self, tiny_config):
        grown = platform_variant("cxl-pud", base=tiny_config.platform)
        assert grown.cxl_pud is not None
        assert "cxl-pud" in backend_roster(grown)

    def test_feedback_variants_registered(self, tiny_config):
        for name in ("default-feedback", "multicore-isp-feedback",
                     "cxl-pud-feedback"):
            assert name in available_platform_variants()
            grown = platform_variant(name, base=tiny_config.platform)
            assert grown.contention_feedback is True
        cxl = platform_variant("cxl-pud-feedback", base=tiny_config.platform)
        assert cxl.cxl_pud is not None
        multicore = platform_variant("multicore-isp-feedback",
                                     base=tiny_config.platform)
        assert multicore.isp_cores == MULTICORE_ISP_CORES

    def test_unknown_variant_lists_known_names(self):
        with pytest.raises(ValueError, match="unknown platform variant"):
            platform_variant("no-such-shape")
        with pytest.raises(ValueError, match="multicore-isp"):
            platform_variant("no-such-shape")

    def test_user_registered_variant_is_sweepable(self, tiny_config):
        def fast_cxl(base):
            return dataclasses.replace(
                base, cxl_pud=CXLPuDConfig(link_latency_ns=100.0))

        register_platform_variant("fast-cxl", fast_cxl)
        try:
            assert "fast-cxl" in available_platform_variants()
            with pytest.raises(ValueError, match="already registered"):
                register_platform_variant("fast-cxl", fast_cxl)
            runner = ExperimentRunner(tiny_config)
            grid = runner.sweep(("Conduit",),
                                [Jacobi1DWorkload(scale=TINY_SCALE)],
                                platforms=("fast-cxl",))
            assert ("jacobi-1d", "Conduit", "fast-cxl") in grid
        finally:
            PLATFORM_VARIANTS.pop("fast-cxl", None)


class TestPlatformAxisSweep:
    POLICIES = ("CPU", "Conduit")
    PLATFORMS = ("default", "cxl-pud")

    def test_cross_product_keys_and_order(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        workloads = [Jacobi1DWorkload(scale=TINY_SCALE)]
        grid = runner.sweep(self.POLICIES, workloads,
                            platforms=self.PLATFORMS)
        assert list(grid) == [
            ("jacobi-1d", policy, platform)
            for policy in self.POLICIES for platform in self.PLATFORMS
        ]
        assert runner.last_sweep_stats.pairs == 4
        assert runner.last_sweep_stats.platforms == 2

    def test_serial_parallel_bit_identity(self, tiny_config):
        workloads = [Jacobi1DWorkload(scale=TINY_SCALE)]
        serial = ExperimentRunner(tiny_config).sweep(
            self.POLICIES, workloads, platforms=self.PLATFORMS)
        parallel = ExperimentRunner(tiny_config).sweep(
            self.POLICIES, workloads, platforms=self.PLATFORMS,
            parallel=True, workers=2)
        assert list(serial) == list(parallel)
        for key in serial:
            assert (result_fingerprint(serial[key]) ==
                    result_fingerprint(parallel[key])), key

    def test_platform_label_is_not_part_of_the_cache_key(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        workload = Jacobi1DWorkload(scale=TINY_SCALE)
        labelled = runner.spec_for(workload, "Conduit",
                                   platform=tiny_config.platform,
                                   platform_name="some-label")
        plain = runner.spec_for(workload, "Conduit")
        assert labelled != plain
        assert run_spec_key(labelled) == run_spec_key(plain)

    def test_axis_sweep_shares_cache_with_plain_sweep(self, tiny_config,
                                                      tmp_path):
        cache_dir = str(tmp_path / "cache")
        workloads = [Jacobi1DWorkload(scale=TINY_SCALE)]
        runner = ExperimentRunner(tiny_config)
        runner.sweep(self.POLICIES, workloads, platforms=("default",),
                     cache_dir=cache_dir)
        assert runner.last_sweep_stats.executed == 2
        # A plain (no platform axis) sweep of the same shape is served
        # entirely from the axis sweep's entries: the variant label is
        # excluded from the key, the configuration is what matters.
        fresh = ExperimentRunner(tiny_config)
        fresh.sweep(self.POLICIES, workloads, cache_dir=cache_dir)
        assert fresh.last_sweep_stats.cache_hits == 2
        assert fresh.last_sweep_stats.executed == 0

    def test_duplicate_variant_rejected(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        with pytest.raises(ValueError, match="duplicate platform variant"):
            runner.sweep(("CPU",), [Jacobi1DWorkload(scale=TINY_SCALE)],
                         platforms=("default", "default"))

    def test_empty_axis_rejected(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        with pytest.raises(ValueError, match="at least one"):
            runner.sweep(("CPU",), [Jacobi1DWorkload(scale=TINY_SCALE)],
                         platforms=())


class TestExperimentRegistry:
    def test_every_definition_is_well_formed(self):
        for name, definition in EXPERIMENT_REGISTRY.items():
            assert definition.name == name
            assert definition.title
            assert definition.build is not None or definition.composite
            assert definition.axes_summary()

    def test_expected_builtins_present(self):
        assert {"fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "table3",
                "overheads", "backend_ablation", "contention",
                "cost_ablation", "coherence_ablation",
                "vector_width_ablation",
                "report"} <= set(available_experiments())

    def test_report_composite_covers_the_whole_evaluation(self, tiny_config):
        # The full-report section set the old CI script asserted; a member
        # dropped from the composite must fail here, not silently shrink
        # the published report.
        assert experiment_def("report").composite == (
            "table3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10",
            "overheads")
        from repro.experiments import run_report
        sections = run_report(tiny_config, parallel=False)
        assert set(sections) == {"table3", "fig4", "fig5", "fig7a", "fig7b",
                                 "fig8", "fig9", "fig10", "overheads"}
        assert all(text.strip() and text != "(no rows)"
                   for text in sections.values())

    def test_unknown_experiment_lists_available(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            experiment_def("fig99")
        with pytest.raises(ValueError, match="fig7"):
            experiment_def("fig99")

    def test_register_rejects_silent_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_experiment(ExperimentDef(
                name="fig7", title="imposter",
                build=lambda ctx: {}))

    def test_run_experiment_sections_and_stats(self, tiny_config):
        result = run_experiment("fig8", tiny_config, parallel=False)
        assert list(result.sections) == ["fig8"]
        rows = result.sections["fig8"]
        assert len(rows) == 8  # 2 workloads x 4 policies
        assert all(row["p9999_us"] >= row["p99_us"] > 0 for row in rows)
        (name, stats), = result.stats
        assert name == "fig8"
        assert stats.pairs == 8

    def test_multi_platform_run_prefixes_sections(self, tiny_config):
        result = run_experiment("fig10", tiny_config,
                                platforms=("default", "cxl-pud"),
                                parallel=False)
        assert list(result.sections) == ["default/fig10", "cxl-pud/fig10"]
        assert result.stats[0][1].pairs == 6  # 1 workload x 3 pol x 2 plat
        # The per-variant grids come from the one cross-product sweep.
        default = result.platform_grid("default")
        grown = result.platform_grid("cxl-pud")
        assert set(default) == set(grown)
        assert len(result.grid) == len(default) + len(grown)

    def test_ablation_is_a_platform_axis_sweep(self, tiny_config):
        result = run_experiment("backend_ablation", tiny_config,
                                parallel=False)
        rows = result.sections["ablation"]
        assert {row["roster"] for row in rows} == {"default",
                                                   "multicore-isp",
                                                   "cxl-pud"}
        assert result.stats[0][1].platforms == 3
        # The speedup column normalizes against the default roster even
        # though it is not the first variant alphabetically; its own
        # speedup is exactly 1.
        for row in rows:
            if row["roster"] == "default":
                assert row["speedup_vs_default"] == 1.0

    def test_design_ablations_are_registered_experiments(self, tiny_config):
        # The cost-model / coherence / vector-width ablations, formerly
        # hand-rolled in benchmarks/test_bench_ablations.py, run through
        # the registry like every other experiment.
        cost = run_experiment("cost_ablation", tiny_config, parallel=False)
        variants = [row["variant"] for row in cost.sections["cost_ablation"]]
        assert variants == ["full", "no-queueing-delay", "no-data-movement",
                            "no-dependence-delay", "sum-of-delays"]
        coherence = run_experiment("coherence_ablation", tiny_config,
                                   parallel=False)
        rows = coherence.sections["coherence_ablation"]
        assert [row["coherence"] for row in rows] == ["lazy", "strict"]
        strict = next(row for row in rows if row["coherence"] == "strict")
        lazy = next(row for row in rows if row["coherence"] == "lazy")
        assert strict["flushes"] >= lazy["flushes"]
        widths = run_experiment("vector_width_ablation", tiny_config,
                                parallel=False)
        rows = widths.sections["vector_width_ablation"]
        assert [row["vector_width"] for row in rows] == [4096, 1024, 256]
        assert rows[-1]["instructions"] > rows[0]["instructions"]

    def test_contention_experiment_pairs_feedback_variants(self,
                                                           tiny_config):
        result = run_experiment("contention", tiny_config, parallel=False)
        rows = result.sections["contention"]
        # One row per (workload, base roster); the feedback twin's numbers
        # ride along in the same row.
        assert {row["roster"] for row in rows} == {"default",
                                                   "multicore-isp",
                                                   "cxl-pud"}
        for row in rows:
            assert row["greedy_ms"] > 0
            assert row["feedback_ms"] > 0
            assert row["host_ms"] > 0
            assert row["feedback_speedup"] == pytest.approx(
                row["greedy_ms"] / row["feedback_ms"])
        assert result.stats[0][1].platforms == 6

    def test_contention_experiment_survives_platform_override(self,
                                                              tiny_config):
        # A lone base roster (no twin swept) still renders, with the
        # feedback columns absent rather than a KeyError.
        result = run_experiment("contention", tiny_config,
                                platforms=("cxl-pud",), parallel=False)
        rows = result.sections["contention"]
        assert rows and all("feedback_ms" not in row for row in rows)
        # A lone feedback variant is reported as its own roster.
        result = run_experiment("contention", tiny_config,
                                platforms=("cxl-pud-feedback",),
                                parallel=False)
        rows = result.sections["contention"]
        assert {row["roster"] for row in rows} == {"cxl-pud-feedback"}

    def test_ablation_baseline_follows_the_swept_axis(self, tiny_config):
        # Without the default roster in the run, the column is relabelled
        # after the variant actually used as the baseline.
        result = run_experiment("backend_ablation", tiny_config,
                                platforms=("cxl-pud", "multicore-isp"),
                                parallel=False)
        rows = result.sections["ablation"]
        assert all("speedup_vs_cxl-pud" in row for row in rows)

    def test_duplicate_platforms_rejected_by_engine(self, tiny_config):
        with pytest.raises(ValueError, match="duplicate platform variant"):
            run_experiment("fig10", tiny_config,
                           platforms=("default", "default"),
                           parallel=False)

    def test_result_platform_grid_rejects_unswept_name(self, tiny_config):
        result = run_experiment("fig10", tiny_config,
                                platforms=("cxl-pud",), parallel=False)
        with pytest.raises(ValueError, match="not part of this result"):
            result.platform_grid("default")

    def test_ad_hoc_definition_runs_unregistered(self, tiny_config):
        definition = ExperimentDef(
            name="adhoc", title="ad-hoc",
            policies=("CPU", "Conduit"),
            workloads=(Jacobi1DWorkload.name,),
            build=per_platform(lambda ctx, name, grid: {
                "adhoc": [{"pairs": len(grid)}]}))
        result = run_experiment(definition, tiny_config, parallel=False)
        assert result.sections["adhoc"] == [{"pairs": 2}]
        assert "adhoc" not in EXPERIMENT_REGISTRY


class TestCLI:
    @pytest.mark.parametrize("experiment", sorted(EXPERIMENT_REGISTRY))
    def test_run_smoke_every_registry_entry(self, experiment, capsys,
                                            cli_cache_dir):
        rc = cli_main(["run", experiment, "--scale", str(CLI_SCALE),
                       "--serial", "--cache-dir", cli_cache_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "== " in out  # at least one formatted section

    def test_list_names_experiments_and_variants(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENT_REGISTRY:
            assert name in out
        for variant in ("default", "multicore-isp", "cxl-pud"):
            assert variant in out

    def test_verbose_surfaces_sweep_stats(self, capsys, cli_cache_dir):
        rc = cli_main(["run", "fig8", "--scale", str(CLI_SCALE), "--serial",
                       "--cache-dir", cli_cache_dir, "-v"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[sweep fig8]" in out
        assert "pairs=8" in out
        assert "cache_hits=" in out and "workers=" in out

    def test_platform_axis_from_the_cli(self, capsys, cli_cache_dir):
        rc = cli_main(["run", "fig10", "--scale", str(CLI_SCALE), "--serial",
                       "--cache-dir", cli_cache_dir,
                       "--platform", "default", "--platform", "cxl-pud"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "== default/fig10 ==" in out
        assert "== cxl-pud/fig10 ==" in out

    def test_json_output(self, capsys, cli_cache_dir, tmp_path):
        out_path = tmp_path / "fig8.json"
        rc = cli_main(["run", "fig8", "--scale", str(CLI_SCALE), "--serial",
                       "--cache-dir", cli_cache_dir, "--json",
                       str(out_path)])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["experiment"] == "fig8"
        assert payload["sections"]["fig8"]
        assert payload["sweeps"][0]["pairs"] == 8

    def test_json_schema_version_pinned(self, capsys, cli_cache_dir,
                                        tmp_path):
        """The JSON document is versioned and the version is pinned.

        The literal ``1`` is deliberate (not imported): changing the
        document layout must both bump ``RESULT_SCHEMA_VERSION`` and
        consciously update this pin, mirroring the benchmark-record
        schema test.
        """
        out_path = tmp_path / "fig8.json"
        rc = cli_main(["run", "fig8", "--scale", str(CLI_SCALE), "--serial",
                       "--cache-dir", cli_cache_dir, "--json",
                       str(out_path)])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == 1
        assert payload["schema"] == RESULT_SCHEMA_VERSION

    def test_profile_prints_phase_breakdown(self, capsys):
        rc = cli_main(["run", "fig8", "--scale", str(CLI_SCALE),
                       "--profile"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[profile] phase breakdown" in out
        for phase in ("collect", "decide", "transform", "move", "execute",
                      "other", "total"):
            assert f"[profile]   {phase}" in out

    def test_unknown_experiment_exit_code_and_message(self, capsys):
        rc = cli_main(["run", "fig99", "--no-cache"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "unknown experiment 'fig99'" in captured.err
        assert "fig7" in captured.err  # the message lists what exists

    def test_unknown_variant_exit_code_and_message(self, capsys):
        rc = cli_main(["run", "fig7", "--platform", "warp-drive",
                       "--no-cache"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "unknown platform variant 'warp-drive'" in captured.err
        assert "cxl-pud" in captured.err


class TestCompareCLI:
    """``python -m repro compare`` and its pinned JSON document schema."""

    #: Per-row keys of the version-1 comparison document.  The literal
    #: tuple is deliberate: adding/removing a key must bump
    #: ``COMPARE_SCHEMA_VERSION`` and consciously update this pin.
    ROW_KEYS = ("workload", "policy", "base_ms", "other_ms", "time_ratio",
                "base_energy_mj", "other_energy_mj", "energy_ratio",
                "base_gc_pages", "other_gc_pages")

    def test_compare_json_document_schema(self, capsys, cli_cache_dir,
                                          tmp_path):
        from repro.experiments import COMPARE_SCHEMA_VERSION
        out_path = tmp_path / "compare.json"
        rc = cli_main(["compare", "fig8", "default", "default-feedback",
                       "--scale", str(CLI_SCALE), "--serial",
                       "--cache-dir", cli_cache_dir, "--json",
                       str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig8: default vs default-feedback" in out
        assert "geomean time ratio" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == 1
        assert payload["schema"] == COMPARE_SCHEMA_VERSION
        assert payload["experiment"] == "fig8"
        assert payload["base"] == "default"
        assert payload["other"] == "default-feedback"
        assert payload["rows"]
        for row in payload["rows"]:
            assert sorted(row) == sorted(self.ROW_KEYS)
            assert row["base_ms"] > 0 and row["other_ms"] > 0
        summary = payload["summary"]
        assert summary["pairs"] == len(payload["rows"])
        for key in ("geomean_time_ratio", "geomean_energy_ratio",
                    "max_time_ratio", "max_time_ratio_pair"):
            assert key in summary

    def test_compare_is_symmetric_in_ratio(self, cli_cache_dir, capsys,
                                           tmp_path):
        """Swapping base/other inverts every ratio (same cached sweep)."""
        a_path, b_path = tmp_path / "a.json", tmp_path / "b.json"
        for path, pair in ((a_path, ("default", "default-feedback")),
                           (b_path, ("default-feedback", "default"))):
            rc = cli_main(["compare", "fig8", *pair,
                           "--scale", str(CLI_SCALE), "--serial",
                           "--cache-dir", cli_cache_dir, "--json",
                           str(path)])
            assert rc == 0
        capsys.readouterr()
        forward = json.loads(a_path.read_text())
        backward = json.loads(b_path.read_text())
        by_key = {(r["workload"], r["policy"]): r for r in backward["rows"]}
        for row in forward["rows"]:
            reverse = by_key[(row["workload"], row["policy"])]
            assert row["time_ratio"] == pytest.approx(
                1.0 / reverse["time_ratio"])

    def test_compare_rejects_identity_and_composites(self, capsys):
        assert cli_main(["compare", "fig8", "default", "default",
                         "--no-cache"]) == 2
        assert "no-op" in capsys.readouterr().err
        assert cli_main(["compare", "report", "default",
                         "default-feedback", "--no-cache"]) == 2
        assert "policy-sweeping" in capsys.readouterr().err


class TestCompareGrids:
    """Ratio edge cases of :func:`compare_grids` and its summary block."""

    @staticmethod
    def _result(time_ns: float, energy_nj: float):
        from repro.core.metrics import ExecutionBreakdown, ExecutionResult
        from repro.energy.model import EnergyBreakdown
        return ExecutionResult(
            workload="w", policy="p", total_time_ns=time_ns, records=[],
            energy=EnergyBreakdown(compute_nj=energy_nj,
                                   data_movement_nj=0.0, per_resource_nj={},
                                   per_transfer_kind_nj={}),
            breakdown=ExecutionBreakdown())

    def test_zero_over_zero_is_one_not_inf(self):
        # Regression: 0/0 used to report inf ("infinitely slower") for a
        # pair where literally nothing changed.
        from repro.experiments import compare_grids
        rows = compare_grids({("w", "p"): self._result(0.0, 0.0)},
                             {("w", "p"): self._result(0.0, 0.0)})
        assert rows[0]["time_ratio"] == 1.0
        assert rows[0]["energy_ratio"] == 1.0

    def test_nonzero_over_zero_is_still_inf(self):
        from repro.experiments import compare_grids
        rows = compare_grids({("w", "p"): self._result(0.0, 0.0)},
                             {("w", "p"): self._result(5.0, 5.0)})
        assert rows[0]["time_ratio"] == float("inf")
        assert rows[0]["energy_ratio"] == float("inf")

    def test_ordinary_ratio_is_other_over_base(self):
        from repro.experiments import compare_grids
        rows = compare_grids({("w", "p"): self._result(2.0, 4.0)},
                             {("w", "p"): self._result(6.0, 2.0)})
        assert rows[0]["time_ratio"] == pytest.approx(3.0)
        assert rows[0]["energy_ratio"] == pytest.approx(0.5)

    def test_summary_geomeans_exclude_infinite_rows(self):
        # Regression: one x/0 row used to poison the whole geomean into
        # inf, hiding every finite pair's contribution.
        import math
        from repro.experiments import compare_grids
        from repro.experiments.compare import _summary
        base = {("a", "p"): self._result(1.0, 1.0),
                ("b", "p"): self._result(0.0, 0.0)}
        other = {("a", "p"): self._result(2.0, 2.0),
                 ("b", "p"): self._result(5.0, 5.0)}
        summary = _summary(compare_grids(base, other))
        assert summary["pairs"] == 2
        assert math.isfinite(summary["geomean_time_ratio"])
        assert summary["geomean_time_ratio"] == pytest.approx(2.0)
        assert summary["geomean_energy_ratio"] == pytest.approx(2.0)
        # The per-row blow-up still surfaces as the worst pair.
        assert summary["max_time_ratio"] == float("inf")
        assert summary["max_time_ratio_pair"] == ["b", "p"]
