"""Tests for the shared vocabulary in repro.common."""

import pytest

from repro.common import (DataLocation, LatencyClass, OpClass, OpType,
                          Resource, RESOURCE_HOME_LOCATION, SSD_RESOURCES)


class TestOpTypeCategories:
    def test_bitwise_ops_are_bitwise(self):
        for op in (OpType.AND, OpType.OR, OpType.XOR, OpType.NOT,
                   OpType.SHL, OpType.SHR):
            assert op.is_bitwise

    def test_arithmetic_ops_are_arithmetic(self):
        for op in (OpType.ADD, OpType.SUB, OpType.MUL, OpType.DIV,
                   OpType.REDUCE_ADD):
            assert op.is_arithmetic

    def test_predication_ops(self):
        for op in (OpType.CMP_EQ, OpType.CMP_LT, OpType.SELECT):
            assert op.is_predication

    def test_control_ops(self):
        for op in (OpType.SCALAR, OpType.BRANCH, OpType.CALL):
            assert op.is_control

    def test_categories_are_disjoint(self):
        for op in OpType:
            flags = [op.is_bitwise, op.is_arithmetic, op.is_predication,
                     op.is_memory, op.is_control]
            assert sum(flags) == 1, f"{op} belongs to {sum(flags)} categories"


class TestOpClass:
    @pytest.mark.parametrize("op,expected", [
        (OpType.AND, OpClass.BITWISE),
        (OpType.MUL, OpClass.ARITHMETIC),
        (OpType.SELECT, OpClass.PREDICATION),
        (OpType.COPY, OpClass.MEMORY),
        (OpType.SCALAR, OpClass.CONTROL),
    ])
    def test_classification(self, op, expected):
        assert OpClass.of(op) is expected


class TestLatencyClass:
    def test_bitwise_is_low_latency(self):
        assert LatencyClass.of(OpType.XOR) is LatencyClass.LOW

    def test_addition_is_medium_latency(self):
        assert LatencyClass.of(OpType.ADD) is LatencyClass.MEDIUM

    def test_multiplication_is_high_latency(self):
        assert LatencyClass.of(OpType.MUL) is LatencyClass.HIGH

    def test_every_op_has_a_latency_class(self):
        for op in OpType:
            assert LatencyClass.of(op) in LatencyClass


class TestResources:
    def test_ssd_resources_are_in_ssd(self):
        for resource in SSD_RESOURCES:
            assert resource.is_in_ssd

    def test_host_resources_are_not_in_ssd(self):
        assert not Resource.HOST_CPU.is_in_ssd
        assert not Resource.HOST_GPU.is_in_ssd

    def test_ifp_home_is_flash(self):
        assert RESOURCE_HOME_LOCATION[Resource.IFP] is DataLocation.FLASH

    def test_isp_and_pud_share_dram_home(self):
        # ISP operates on operands staged in SSD DRAM, like PuD-SSD
        # (paper footnote: both incur similar data-movement overheads).
        assert RESOURCE_HOME_LOCATION[Resource.ISP] is DataLocation.SSD_DRAM
        assert RESOURCE_HOME_LOCATION[Resource.PUD] is DataLocation.SSD_DRAM

    def test_every_resource_has_a_home(self):
        for resource in Resource:
            assert resource in RESOURCE_HOME_LOCATION
