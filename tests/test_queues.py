"""Tests for the per-resource execution queues."""

import pytest

from repro.common import Resource
from repro.ssd.queues import ExecutionQueue, ResourceQueueSet


class TestExecutionQueue:
    def test_pending_latency_counter(self):
        queue = ExecutionQueue(Resource.ISP, parallelism=1)
        queue.enqueue(1, now=0.0, estimated_latency=100.0)
        queue.enqueue(2, now=0.0, estimated_latency=50.0)
        assert queue.pending_latency() == pytest.approx(150.0)
        queue.complete(1)
        assert queue.pending_latency() == pytest.approx(50.0)
        queue.complete(2)
        assert queue.pending_latency() == 0.0

    def test_depth_tracks_outstanding_instructions(self):
        queue = ExecutionQueue(Resource.PUD, parallelism=2)
        queue.enqueue(1, 0.0, 10.0)
        queue.enqueue(2, 0.0, 10.0)
        assert queue.depth == 2
        queue.complete(2)
        assert queue.depth == 1

    def test_queueing_delay_scales_with_backlog(self):
        queue = ExecutionQueue(Resource.IFP, parallelism=4)
        assert queue.queueing_delay(0.0) == 0.0
        for uid in range(8):
            queue.enqueue(uid, 0.0, 100.0)
        # 8 instructions of 100 ns over 4 parallel units -> ~200 ns backlog.
        assert queue.queueing_delay(0.0) == pytest.approx(200.0)

    def test_reserve_uses_parallel_units(self):
        queue = ExecutionQueue(Resource.IFP, parallelism=2)
        queue.enqueue(1, 0.0, 100.0)
        queue.enqueue(2, 0.0, 100.0)
        queue.enqueue(3, 0.0, 100.0)
        first = queue.reserve(1, 0.0, 100.0)
        second = queue.reserve(2, 0.0, 100.0)
        third = queue.reserve(3, 0.0, 100.0)
        assert first.start == 0.0 and second.start == 0.0
        assert third.start == pytest.approx(100.0)

    def test_completion_records_are_kept(self):
        queue = ExecutionQueue(Resource.ISP, parallelism=1)
        queue.enqueue(1, 0.0, 10.0)
        queue.reserve(1, 0.0, 10.0)
        entry = queue.complete(1)
        assert entry.completion_time == pytest.approx(10.0)
        assert len(queue.completed) == 1


class TestResourceQueueSet:
    def queues(self) -> ResourceQueueSet:
        return ResourceQueueSet.of(
            ExecutionQueue(Resource.ISP, parallelism=1),
            ExecutionQueue(Resource.PUD, parallelism=8),
            ExecutionQueue(Resource.IFP, parallelism=16))

    def test_all_three_resources_present(self):
        queues = self.queues()
        for resource in (Resource.ISP, Resource.PUD, Resource.IFP):
            assert queues[resource].resource is resource

    def test_platform_queue_set_follows_backend_registry(self, platform):
        # The platform's queue set is a view over the registry's queues:
        # same identities, same queue objects.
        assert set(platform.queues.queues) == set(platform.backends.ids())
        for backend in platform.backends:
            assert platform.queues[backend.resource] is backend.queue

    def test_queueing_delays_reports_all_resources(self):
        queues = self.queues()
        delays = queues.queueing_delays(0.0)
        assert set(delays) == {Resource.ISP, Resource.PUD, Resource.IFP}

    def test_busiest_identifies_loaded_resource(self):
        queues = self.queues()
        queues[Resource.ISP].enqueue(1, 0.0, 1000.0)
        assert queues.busiest(0.0) is Resource.ISP

    def test_total_completed(self):
        queues = self.queues()
        queues[Resource.PUD].enqueue(1, 0.0, 5.0)
        queues[Resource.PUD].complete(1)
        assert queues.total_completed() == 1
