"""Schema check for the tracked ``BENCH_vectorized.json`` perf record.

The record is *tracked* in git yet overwritten by every run of
``benchmarks/test_bench_sim_throughput.py::test_bench_vectorized_engine_record``,
which historically meant a checkout could carry numbers from an unknown
machine at an unknown scale.  Since schema version 2 every entry is
stamped with ``bench_scale``, ``host`` and ``recorded_unix`` metadata;
this test pins that schema so a stale-era entry (or a benchmark edit
that forgets to bump the version) fails the tier-1 suite loudly instead
of being silently misread.

The version literal is deliberately duplicated here rather than imported
from ``benchmarks/`` -- the benchmark module needs pytest-benchmark
fixtures and its own conftest, and the duplication is the point: writer
and checker must agree *in git*, not by definition.
"""

from __future__ import annotations

import json
import math
import os

#: Must match BENCH_RECORD_SCHEMA_VERSION in
#: benchmarks/test_bench_sim_throughput.py.  Bump both together.
EXPECTED_SCHEMA_VERSION = 3

RECORD_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_vectorized.json")

#: Required top-level fields and the types a well-formed entry carries.
REQUIRED_FIELDS = {
    "schema_version": int,
    "bench_scale": (int, float),
    "host": dict,
    "recorded_unix": (int, float),
    "sweep_pairs": int,
    "vectorized_sweep_s": (int, float),
    "object_sweep_s": (int, float),
    "reference_offload_sweep_s": (int, float),
    "vectorized_over_object_speedup": (int, float),
    "batched_over_reference_speedup": (int, float),
    "pr6_landing_vs_pr5": dict,
    "pr8_landing_vs_reference": dict,
}

REQUIRED_HOST_FIELDS = {
    "platform": str,
    "machine": str,
    "python": str,
    "usable_cpus": int,
}


def _load_record():
    with open(RECORD_PATH) as handle:
        return json.load(handle)


def test_record_exists_and_is_json():
    record = _load_record()
    assert isinstance(record, dict)


def test_record_schema_version_is_current():
    record = _load_record()
    assert record.get("schema_version") == EXPECTED_SCHEMA_VERSION, (
        f"BENCH_vectorized.json carries schema version "
        f"{record.get('schema_version')!r}, expected "
        f"{EXPECTED_SCHEMA_VERSION}; regenerate it with\n"
        "  PYTHONPATH=src python -m pytest "
        "benchmarks/test_bench_sim_throughput.py::"
        "test_bench_vectorized_engine_record")


def test_record_required_fields_and_types():
    record = _load_record()
    for field, types in REQUIRED_FIELDS.items():
        assert field in record, f"record missing required field {field!r}"
        assert isinstance(record[field], types), (
            f"record field {field!r} has type "
            f"{type(record[field]).__name__}, expected {types}")
    for field, types in REQUIRED_HOST_FIELDS.items():
        assert field in record["host"], (
            f"record host metadata missing {field!r}")
        assert isinstance(record["host"][field], types), (
            f"host field {field!r} has type "
            f"{type(record['host'][field]).__name__}, expected {types}")


def test_record_values_are_sane():
    """The numbers a regenerated entry must always satisfy."""
    record = _load_record()
    assert 0.0 < record["bench_scale"] <= 1.0
    assert record["sweep_pairs"] > 0
    assert record["vectorized_sweep_s"] > 0.0
    assert record["object_sweep_s"] > 0.0
    assert record["reference_offload_sweep_s"] > 0.0
    assert math.isfinite(record["vectorized_over_object_speedup"])
    assert record["vectorized_over_object_speedup"] > 0.0
    assert math.isfinite(record["batched_over_reference_speedup"])
    assert record["batched_over_reference_speedup"] > 0.0
    # Stamped after 2026-01-01 (the schema-2 era began mid-2026).
    assert record["recorded_unix"] > 1767225600
    landing = record["pr6_landing_vs_pr5"]
    assert landing["speedup_best_vs_best"] > 1.0
    pr8 = record["pr8_landing_vs_reference"]
    # The PR 8 anchor records honest numbers against an explicit target;
    # both fields must be present even (especially) when the target was
    # missed, so the trajectory stays interpretable.
    assert pr8["speedup_best_vs_best"] > 0.0
    assert pr8["target_speedup"] >= 1.0
    assert isinstance(pr8["target_met"], bool)
