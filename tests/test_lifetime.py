"""Tests for the device-lifetime subsystem.

Covers the drive-age profiles (determinism, validation, free-space
targeting), the background flash engine (GC activity on aged drives,
strict idleness -- bit-equality -- on fresh ones), the adaptive-FTL
policy axis, the deterministic tie-breaks of victim selection, and the
core safety property: maintenance never loses a valid page.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import ConfigurationError
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.experiments.runner import RunSpec, execute_run_spec
from repro.ssd.config import (FTLConfig, GCVictimPolicy, NANDConfig,
                              SSDConfig, small_ssd_config)
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.gc import GarbageCollector
from repro.ssd.lifetime import (DRIVE_AGE_PROFILES, MID_LIFE_PROFILE,
                                NEAR_EOL_PROFILE, BackgroundFlashEngine,
                                DriveAgeProfile, LifetimeConfig,
                                apply_drive_age)
from repro.ssd.nand import NANDArray, PhysicalBlockAddress
from repro.ssd.ssd import SSD
from repro.ssd.wear_leveling import WearLeveler


def tiny_nand() -> NANDConfig:
    return NANDConfig(channels=2, dies_per_channel=1, planes_per_die=1,
                      blocks_per_plane=8, pages_per_block=4)


def tiny_ssd(ftl: FTLConfig = None) -> SSD:
    config = SSDConfig(nand=tiny_nand(), ftl=ftl or FTLConfig())
    return SSD(config)


def aged_small_ssd(profile: DriveAgeProfile,
                   ftl: FTLConfig = None) -> SSD:
    config = small_ssd_config()
    if ftl is not None:
        config = dataclasses.replace(config, ftl=ftl)
    ssd = SSD(config)
    apply_drive_age(ssd, profile)
    return ssd


def assert_readback_intact(ssd: SSD) -> None:
    """Every mapped LPA must still be stored at its mapped location."""
    for lpa, ppa in ssd.ftl.mapping.items():
        assert ssd.array.read_page(ppa) == lpa, (
            f"LPA {lpa} lost: mapping points at {ppa} but the block does "
            "not hold it")


# ------------------------------------------------------------------------
# Deterministic tie-breaks (satellite: victim selection must not depend
# on block materialization order)
# ------------------------------------------------------------------------


class TestTieBreaks:
    def _two_equal_victims(self, ftl: FlashTranslationLayer):
        """Two blocks on different channels, same invalid/valid counts."""
        array = ftl.array
        for channel in (1, 0):  # deliberately materialize high first
            block = array.block(PhysicalBlockAddress(channel, 0, 0, 0))
            for page, lpa in enumerate((100 + channel * 10,
                                        101 + channel * 10)):
                ppa = array.program_page(block.address, lpa)
                ftl.mapping[lpa] = ppa
            array.invalidate_page(block.address.page(0))
            del ftl.mapping[100 + channel * 10]
        return array

    def test_gc_victim_tie_breaks_on_lowest_address(self):
        ftl = FlashTranslationLayer(NANDArray(tiny_nand()), FTLConfig())
        self._two_equal_victims(ftl)
        gc = GarbageCollector(ftl, ftl.config)
        victim = gc.select_victim()
        assert victim is not None
        # Channel 1's block was materialized first; address order must win.
        assert victim.address == PhysicalBlockAddress(0, 0, 0, 0)

    def test_gc_victim_prefers_more_invalid_over_address(self):
        ftl = FlashTranslationLayer(NANDArray(tiny_nand()), FTLConfig())
        array = self._two_equal_victims(ftl)
        # Tip the higher-address block to 2 invalid pages; it must win now.
        high = array.block(PhysicalBlockAddress(1, 0, 0, 0))
        array.invalidate_page(high.address.page(1))
        del ftl.mapping[111]
        victim = GarbageCollector(ftl, ftl.config).select_victim()
        assert victim.address == high.address

    def test_wear_leveler_cold_pick_tie_breaks_on_lowest_address(self):
        ftl = FlashTranslationLayer(NANDArray(tiny_nand()), FTLConfig())
        array = self._two_equal_victims(ftl)
        for channel in (0, 1):  # equal erase counts, valid data in both
            array.block(PhysicalBlockAddress(channel, 0, 0, 0)
                        ).erase_count = 7
        leveler = WearLeveler(ftl, ftl.config)
        coldest = leveler.coldest_block()
        assert coldest is not None
        assert coldest.address == PhysicalBlockAddress(0, 0, 0, 0)


# ------------------------------------------------------------------------
# Adaptive-FTL policy axis
# ------------------------------------------------------------------------


class TestAdaptiveFTL:
    def test_cost_benefit_prefers_emptier_victim(self):
        """Equal invalid counts: cost-benefit weighs remaining valid data
        (relocation cost), greedy does not."""
        ftl = FlashTranslationLayer(
            NANDArray(tiny_nand()),
            FTLConfig(gc_victim_policy=GCVictimPolicy.COST_BENEFIT))
        array = ftl.array
        # Block A (channel 0): 1 invalid, 3 valid -- expensive to reclaim.
        a = array.block(PhysicalBlockAddress(0, 0, 0, 0))
        for lpa in (200, 201, 202, 203):
            ftl.mapping[lpa] = array.program_page(a.address, lpa)
        array.invalidate_page(a.address.page(0))
        del ftl.mapping[200]
        # Block B (channel 1): 1 invalid, 1 valid -- cheap to reclaim.
        b = array.block(PhysicalBlockAddress(1, 0, 0, 0))
        for lpa in (300, 301):
            ftl.mapping[lpa] = array.program_page(b.address, lpa)
        array.invalidate_page(b.address.page(0))
        del ftl.mapping[300]
        victim = GarbageCollector(ftl, ftl.config).select_victim()
        assert victim.address == b.address
        # Greedy ties on invalid count and falls back to address order.
        greedy_ftl = FlashTranslationLayer(array, FTLConfig())
        greedy = GarbageCollector(greedy_ftl, greedy_ftl.config)
        assert greedy.select_victim().address == a.address

    def test_hot_cold_separation_uses_distinct_active_blocks(self):
        ftl = FlashTranslationLayer(
            NANDArray(tiny_nand()), FTLConfig(hot_cold_separation=True))
        hot = ftl.write(0)
        ftl.write(1)  # advance the stripe back around
        cold_ppa = ftl.allocator.allocate(50, cold=True)
        # Same (channel, die, plane) stripe position, different block:
        # the cold stream must not interleave into the hot active block.
        assert (cold_ppa.channel, cold_ppa.die, cold_ppa.plane) == (
            hot.channel, hot.die, hot.plane)
        assert cold_ppa.block != hot.block

    def test_relocate_defaults_to_configured_separation(self):
        ftl = FlashTranslationLayer(
            NANDArray(tiny_nand()), FTLConfig(hot_cold_separation=True))
        hot = ftl.write(0)
        ftl.write(1)  # wrap the 2-channel stripe back to channel 0
        relocated = ftl.relocate(0)
        assert relocated.channel == hot.channel
        assert relocated.block != hot.block


# ------------------------------------------------------------------------
# Drive-age profiles
# ------------------------------------------------------------------------


class TestDriveAgeProfiles:
    def test_profiles_are_deterministic_under_fixed_seed(self):
        first = aged_small_ssd(NEAR_EOL_PROFILE)
        second = aged_small_ssd(NEAR_EOL_PROFILE)
        assert (first.array.erase_count_stats()
                == second.array.erase_count_stats())
        assert (first.array.free_block_count()
                == second.array.free_block_count())
        assert sorted(first.ftl.mapping.items()) == sorted(
            second.ftl.mapping.items())

    def test_seed_changes_the_fragmentation(self):
        base = aged_small_ssd(NEAR_EOL_PROFILE)
        reseeded = aged_small_ssd(
            dataclasses.replace(NEAR_EOL_PROFILE, seed=1))
        assert sorted(base.ftl.mapping.items()) != sorted(
            reseeded.ftl.mapping.items())

    @pytest.mark.parametrize("name", sorted(DRIVE_AGE_PROFILES))
    def test_free_fraction_lands_near_target(self, name):
        profile = DRIVE_AGE_PROFILES[name]
        ssd = aged_small_ssd(profile)
        blocks_per_plane = ssd.config.nand.blocks_per_plane
        # Quantized per plane to max(2, round(f * blocks)).
        expected = max(2, round(profile.free_fraction * blocks_per_plane)
                       ) / blocks_per_plane
        assert ssd.ftl.free_block_fraction() == pytest.approx(expected)

    def test_filler_pages_live_above_logical_capacity(self):
        ssd = aged_small_ssd(MID_LIFE_PROFILE)
        assert ssd.ftl.mapping  # some valid filler registered
        assert min(ssd.ftl.mapping) >= ssd.config.nand.pages
        assert_readback_intact(ssd)

    def test_operation_counters_reset_after_aging(self):
        ssd = aged_small_ssd(NEAR_EOL_PROFILE)
        assert (ssd.array.reads, ssd.array.programs, ssd.array.erases) == (
            0, 0, 0)
        # The erases==0 gate keeps the wear-leveler's imbalance at 1.0
        # until this run actually erases something.
        assert ssd.wear_leveler.imbalance() == 1.0

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            DriveAgeProfile(free_fraction=0.0)
        with pytest.raises(ConfigurationError):
            DriveAgeProfile(fragment_invalid_fraction=1.5)
        with pytest.raises(ConfigurationError):
            DriveAgeProfile(fragment_erase_count_min=10,
                            fragment_erase_count_max=5)
        with pytest.raises(ConfigurationError):
            DriveAgeProfile(prior_write_amplification=0.5)
        with pytest.raises(ConfigurationError):
            LifetimeConfig(gc_pages_per_step=0)


# ------------------------------------------------------------------------
# Background engine
# ------------------------------------------------------------------------


def attach_engine(ssd: SSD,
                  config: LifetimeConfig = None) -> BackgroundFlashEngine:
    engine = BackgroundFlashEngine(
        ssd, config or LifetimeConfig(background_flash=True))
    ssd.attach_background_engine(engine)
    return engine


class TestBackgroundEngine:
    def test_engine_idles_on_a_fresh_drive_bit_exactly(self):
        """Engine attached to a fresh drive == no engine at all."""
        plain, hooked = tiny_ssd(), tiny_ssd()
        engine = attach_engine(hooked)
        t_plain = t_hooked = 0.0
        for lpa in range(16):
            t_plain = plain.write_page(t_plain, lpa).end_ns
            t_hooked = hooked.write_page(t_hooked, lpa).end_ns
        for lpa in range(16):
            t_plain = plain.read_page(t_plain, lpa).end_ns
            t_hooked = hooked.read_page(t_hooked, lpa).end_ns
        assert t_plain == t_hooked
        assert engine.gc_steps == 0 and engine.wl_runs == 0
        assert engine.busy_ns == 0.0

    def test_aged_drive_generates_gc_traffic(self):
        ssd = aged_small_ssd(NEAR_EOL_PROFILE)
        engine = attach_engine(ssd)
        t = 0.0
        for lpa in range(64):
            t = ssd.write_page(t, lpa).end_ns
        assert engine.gc_steps > 0
        assert engine.gc_relocated_pages > 0
        assert engine.gc_erased_blocks > 0
        assert engine.busy_ns > 0.0
        assert_readback_intact(ssd)

    def test_read_path_pulses_the_engine(self):
        ssd = aged_small_ssd(NEAR_EOL_PROFILE)
        engine = attach_engine(ssd)
        ssd.populate(range(8))
        t = 0.0
        for lpa in range(8):
            t = ssd.read_page(t, lpa).end_ns
        assert engine.gc_steps > 0

    def test_background_chain_is_serialized(self):
        """A pulse inside the in-flight chain's window does nothing."""
        ssd = aged_small_ssd(NEAR_EOL_PROFILE)
        engine = attach_engine(ssd)
        engine.pulse(0.0)
        first_steps = engine.gc_steps
        assert first_steps == 1
        engine.pulse(engine._busy_until / 2.0)
        assert engine.gc_steps == first_steps
        engine.pulse(engine._busy_until)
        assert engine.gc_steps == first_steps + 1

    def test_erase_counts_are_monotone_under_maintenance(self):
        ssd = aged_small_ssd(NEAR_EOL_PROFILE)
        attach_engine(ssd)
        before = dict()
        for block in ssd.array.iter_blocks():
            before[block.address] = block.erase_count
        t = 0.0
        for lpa in range(48):
            t = ssd.write_page(t, lpa).end_ns
        for block in ssd.array.iter_blocks():
            assert block.erase_count >= before.get(block.address, 0)
        assert ssd.array.erases > 0

    def test_wear_leveling_reduces_imbalance(self):
        ssd = tiny_ssd(FTLConfig(wear_leveling_threshold=1.2))
        ftl = ssd.ftl
        # Valid data in a never-erased block; hammer another block with
        # erases to skew the spread far past the threshold.
        for lpa in range(4):
            ftl.write(lpa)
        plane = ssd.array.die(1, 0).plane(0)
        free_index = next(index for index in range(plane.block_count)
                          if plane.is_free_block(index))
        hot = plane.block(free_index)
        for _ in range(12):
            ssd.array.erase_block(hot.address)
        leveler = ssd.wear_leveler
        assert leveler.needs_leveling()
        before = leveler.imbalance()
        engine = attach_engine(ssd)
        engine.pulse(0.0)
        assert engine.wl_runs == 1
        assert engine.wl_migrated_pages > 0
        assert_readback_intact(ssd)
        assert leveler.imbalance() <= before

    def test_wl_budget_caps_migrated_blocks(self):
        ssd = tiny_ssd(FTLConfig(wear_leveling_threshold=1.01))
        config = LifetimeConfig(background_flash=True, wl_blocks_per_run=1)
        engine = attach_engine(ssd, config)
        for lpa in range(8):
            ssd.ftl.write(lpa)
        plane = ssd.array.die(1, 0).plane(0)
        free_index = next(index for index in range(plane.block_count)
                          if plane.is_free_block(index))
        for _ in range(50):
            ssd.array.erase_block(plane.block(free_index).address)
        now = 0.0
        for _ in range(64):
            now = max(now, engine._busy_until)
            engine.pulse(now)
            now += 1.0
        assert engine.wl_erased_blocks <= 1

    @given(overwrites=st.lists(st.integers(min_value=0, max_value=11),
                               min_size=1, max_size=120))
    @settings(max_examples=25, deadline=None)
    def test_maintenance_never_loses_valid_pages(self, overwrites):
        """Random overwrite streams under aggressive GC: every mapped LPA
        survives, bit-for-bit, no matter how the victim blocks churn."""
        ssd = tiny_ssd(FTLConfig(gc_start_threshold=0.30,
                                 gc_stop_threshold=0.35))
        attach_engine(ssd)
        t = 0.0
        for lpa in range(12):
            t = ssd.write_page(t, lpa).end_ns
        for lpa in overwrites:
            t = ssd.write_page(t, lpa).end_ns
        assert_readback_intact(ssd)
        assert set(ssd.ftl.mapping) == set(range(12))


# ------------------------------------------------------------------------
# Platform integration and end-to-end bit-equality
# ------------------------------------------------------------------------


def small_platform_config(**kwargs) -> PlatformConfig:
    return PlatformConfig(ssd=small_ssd_config(), **kwargs)


class TestPlatformIntegration:
    def test_platform_builds_engine_and_applies_profile(self):
        platform = SSDPlatform(small_platform_config(
            lifetime=LifetimeConfig(background_flash=True,
                                    drive_age=NEAR_EOL_PROFILE)))
        assert platform.ssd.background is not None
        stats = platform.maintenance_stats()
        assert stats.background_enabled
        assert stats.drive_age == "near-eol"
        assert stats.free_block_fraction < 0.05
        assert stats.erase_count_max > 0
        assert stats.write_amplification == pytest.approx(
            NEAR_EOL_PROFILE.prior_write_amplification)

    def test_default_platform_reports_fresh_legacy_stats(self):
        platform = SSDPlatform(small_platform_config())
        assert platform.ssd.background is None
        stats = platform.maintenance_stats()
        assert not stats.background_enabled
        assert stats.drive_age == "fresh"
        assert stats.gc_relocated_pages == 0
        assert stats.wear_imbalance == 1.0

    @given(workload=st.sampled_from(["AES", "XOR Filter"]),
           policy=st.sampled_from(["Conduit", "CPU"]))
    @settings(max_examples=8, deadline=None)
    def test_engine_without_profile_is_bit_exact_with_seed(self, workload,
                                                           policy):
        """Satellite property: background_flash=True on a fresh drive must
        not perturb any result (the engine only ever idles)."""
        spec = RunSpec(workload=workload, scale=0.05, policy=policy)
        baseline = execute_run_spec(spec)
        hooked = execute_run_spec(dataclasses.replace(
            spec, platform=dataclasses.replace(
                spec.platform,
                lifetime=LifetimeConfig(background_flash=True))))
        assert hooked.total_time_ns == baseline.total_time_ns
        assert hooked.total_energy_nj == baseline.total_energy_nj
        assert hooked.maintenance.gc_relocated_pages == 0

    def test_aged_platform_run_shifts_results_and_reports_pressure(self):
        spec = RunSpec(workload="AES", scale=0.05, policy="Conduit")
        fresh = execute_run_spec(spec)
        aged = execute_run_spec(dataclasses.replace(
            spec, platform=dataclasses.replace(
                spec.platform, contention_feedback=True,
                lifetime=LifetimeConfig(background_flash=True,
                                        drive_age=NEAR_EOL_PROFILE))))
        assert aged.maintenance.gc_relocated_pages > 0
        assert aged.maintenance.gc_erased_blocks > 0
        assert aged.total_time_ns > fresh.total_time_ns
