"""Tests for the fleet-scale serving layer (the ``serve`` experiment).

Three layers, mirroring the layer split of :mod:`repro.serve`:

* unit behaviour of arrivals / tenants / fleet / SLO accounting;
* property-based determinism: Hypothesis-generated random tenant mixes,
  service models and fleet shapes must produce bit-identical SLO tables
  when re-simulated with the same seed (the satellite the ROADMAP's
  property-harness item reserved for workload *mixes*);
* the registered experiment end to end: serial == sharded bit-identical
  sections and headline, registry/CLI integration, platform-axis runs.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import SimulationError
from repro.core.metrics import (ExecutionBreakdown, ExecutionResult,
                                InstructionRecord)
from repro.common import OpType, Resource
from repro.energy.model import EnergyBreakdown
from repro.experiments import EXPERIMENT_REGISTRY, ExperimentConfig
from repro.serve import (DEFAULT_TENANTS, FleetConfig, FleetSimulator,
                         MMPPArrivals, PoissonArrivals, ServiceModel,
                         TenantSpec, arrival_process, fleet_capacity_rps,
                         fleet_slo_row, fleet_workloads, generate_requests,
                         jain_fairness, mean_service_ns, run_serve,
                         simulate_modes, tenant_slos, validate_tenants)
from repro.workloads import ALL_WORKLOADS, WORKLOAD_REGISTRY

WORKLOAD_NAMES = sorted(WORKLOAD_REGISTRY)


# ------------------------------------------------------------------------
# Arrival processes
# ------------------------------------------------------------------------


class TestArrivals:
    def test_poisson_deterministic_and_sorted(self):
        times_a = PoissonArrivals().generate(random.Random("s"), 100.0, 5.0)
        times_b = PoissonArrivals().generate(random.Random("s"), 100.0, 5.0)
        assert times_a == times_b
        assert times_a == sorted(times_a)
        assert all(0.0 <= t < 5.0 for t in times_a)
        # ~500 expected arrivals; a 40% band is far beyond noise.
        assert 300 < len(times_a) < 700

    def test_mmpp_long_run_rate_matches_request(self):
        times = MMPPArrivals().generate(random.Random(7), 200.0, 20.0)
        assert times == sorted(times)
        assert all(0.0 <= t < 20.0 for t in times)
        # The calm rate is solved so the long-run average equals the
        # requested rate; 4000 expected arrivals, generous band.
        assert 2400 < len(times) < 5600

    def test_mmpp_is_burstier_than_poisson(self):
        """Index of dispersion of per-window counts: MMPP >> Poisson."""
        def dispersion(times, horizon, windows=40):
            counts = [0] * windows
            for t in times:
                counts[min(windows - 1, int(t / horizon * windows))] += 1
            mean = sum(counts) / windows
            var = sum((c - mean) ** 2 for c in counts) / windows
            return var / mean if mean else 0.0

        horizon, rate = 20.0, 300.0
        poisson = PoissonArrivals().generate(random.Random(3), rate, horizon)
        mmpp = MMPPArrivals().generate(random.Random(3), rate, horizon)
        assert dispersion(mmpp, horizon) > 2.0 * dispersion(poisson, horizon)

    def test_invalid_parameters_fail_loudly(self):
        with pytest.raises(SimulationError):
            PoissonArrivals().generate(random.Random(0), -1.0, 1.0)
        with pytest.raises(SimulationError):
            PoissonArrivals().generate(random.Random(0), 1.0, 0.0)
        with pytest.raises(SimulationError):
            MMPPArrivals(burst_fraction=1.5)
        with pytest.raises(SimulationError):
            MMPPArrivals(burst_multiplier=0.5)
        with pytest.raises(ValueError, match="unknown arrival process"):
            arrival_process("diurnal")


# ------------------------------------------------------------------------
# Tenants
# ------------------------------------------------------------------------


class TestTenants:
    def test_unknown_workload_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown workload"):
            TenantSpec(name="t", mix=(("No Such Kernel", 1.0),))

    def test_bad_weights_share_and_arrival_rejected(self):
        with pytest.raises(ValueError, match="non-positive weight"):
            TenantSpec(name="t", mix=(("AES", 0.0),))
        with pytest.raises(ValueError, match="non-positive share"):
            TenantSpec(name="t", mix=(("AES", 1.0),), share=0.0)
        with pytest.raises(ValueError, match="unknown arrival process"):
            TenantSpec(name="t", mix=(("AES", 1.0),), arrival="nope")

    def test_population_validation(self):
        tenant = TenantSpec(name="t", mix=(("AES", 1.0),), share=0.5)
        with pytest.raises(ValueError, match="must sum to 1.0"):
            validate_tenants((tenant,))
        with pytest.raises(ValueError, match="duplicate tenant names"):
            validate_tenants((tenant, tenant))
        with pytest.raises(ValueError, match="must not be empty"):
            validate_tenants(())

    def test_default_population_is_valid_and_covers_all_six(self):
        # The registry is open (trace/zipf workloads join at import time),
        # so the default mixes pin the six hand-built kernels, not the
        # whole registry.
        assert validate_tenants(DEFAULT_TENANTS) == DEFAULT_TENANTS
        kernel_names = sorted(workload.name for workload in ALL_WORKLOADS)
        assert sorted(fleet_workloads(DEFAULT_TENANTS)) == kernel_names
        assert set(kernel_names) <= set(WORKLOAD_NAMES)

    def test_sample_workload_stays_inside_the_mix(self):
        tenant = TenantSpec(name="t", mix=(("AES", 1.0), ("heat-3d", 3.0)))
        rng = random.Random(11)
        draws = {tenant.sample_workload(rng) for _ in range(200)}
        assert draws == {"AES", "heat-3d"}

    def test_normalized_mix_sums_to_one(self):
        tenant = TenantSpec(name="t", mix=(("AES", 2.0), ("heat-3d", 6.0)))
        normalized = dict(tenant.normalized_mix())
        assert normalized["heat-3d"] == pytest.approx(0.75)
        assert sum(normalized.values()) == pytest.approx(1.0)


# ------------------------------------------------------------------------
# Fleet simulation
# ------------------------------------------------------------------------


def _population(*specs) -> tuple:
    return validate_tenants(specs)


SINGLE_TENANT = _population(
    TenantSpec(name="only", mix=(("AES", 1.0),), share=1.0))

TWO_TENANTS = _population(
    TenantSpec(name="a", mix=(("AES", 1.0),), share=0.5),
    TenantSpec(name="b", mix=(("XOR Filter", 1.0),), arrival="mmpp",
               share=0.5))

MODELS = {name: ServiceModel(base_ns=float(1_000_000 + 250_000 * index),
                             tail_ratio=1.0 + 0.5 * index)
          for index, name in enumerate(WORKLOAD_NAMES)}


class TestFleetSimulator:
    def test_missing_service_model_fails_loudly(self):
        with pytest.raises(SimulationError, match="no service model"):
            FleetSimulator(FleetConfig(requests=10)).simulate(
                SINGLE_TENANT, {}, offered_rps=100.0)

    def test_accounting_is_conserved(self):
        config = FleetConfig(devices=2, requests=200, seed=5)
        outcome = FleetSimulator(config).simulate(TWO_TENANTS, MODELS,
                                                  offered_rps=500.0)
        for tenant in outcome.tenants.values():
            assert tenant.admitted == len(tenant.latencies_ns)
            assert tenant.offered == tenant.admitted + tenant.rejected
        assert sum(outcome.per_device_served) == outcome.admitted
        assert outcome.admitted + outcome.rejected > 0

    def test_same_seed_is_bit_identical(self):
        config = FleetConfig(devices=3, requests=150, seed=99)
        run = lambda: FleetSimulator(config).simulate(  # noqa: E731
            TWO_TENANTS, MODELS, offered_rps=800.0)
        assert run() == run()

    def test_overload_sheds_instead_of_queueing_unboundedly(self):
        config = FleetConfig(devices=1, requests=300, seed=1,
                             admission_wait_factor=2.0)
        capacity = fleet_capacity_rps(SINGLE_TENANT, MODELS, config)
        outcome = FleetSimulator(config).simulate(
            SINGLE_TENANT, MODELS, offered_rps=3.0 * capacity)
        assert outcome.rejected > 0
        budget = 2.0 * mean_service_ns(SINGLE_TENANT, MODELS, config)
        max_service = MODELS["AES"].base_ns * 1.1 * MODELS["AES"].tail_ratio
        assert max(outcome.all_latencies_ns()) <= budget + max_service

    def test_rising_load_raises_tail_latency(self):
        config = FleetConfig(devices=2, requests=400, seed=3)
        capacity = fleet_capacity_rps(TWO_TENANTS, MODELS, config)
        simulator = FleetSimulator(config)
        p99 = []
        for load in (0.3, 0.95):
            outcome = simulator.simulate(TWO_TENANTS, MODELS,
                                         offered_rps=load * capacity)
            p99.append(fleet_slo_row(outcome)["p99_ms"])
        assert p99[1] > p99[0]

    def test_tenant_streams_are_independent(self):
        """Adding a tenant must not perturb another tenant's requests."""
        config = FleetConfig(seed=21, requests=100)
        solo = [r for r in generate_requests(SINGLE_TENANT, 200.0, config)
                if r.tenant == "only"]
        shared = _population(
            TenantSpec(name="only", mix=(("AES", 1.0),), share=0.5),
            TenantSpec(name="noise", mix=(("heat-3d", 1.0),), share=0.5))
        # Same per-tenant rate (200 * 1.0 == 400 * 0.5) and same horizon
        # => the "only" stream must be untouched by the new neighbour.
        config_shared = FleetConfig(seed=21, requests=200)
        both = [r for r in generate_requests(shared, 400.0, config_shared)
                if r.tenant == "only"]
        assert solo == both

    def test_service_model_validation(self):
        with pytest.raises(SimulationError):
            ServiceModel(base_ns=0.0)
        with pytest.raises(SimulationError):
            ServiceModel(base_ns=1.0, tail_ratio=0.5)

    def test_service_model_calibration_from_execution_result(self):
        records = [
            InstructionRecord(uid=i, op=OpType.ADD, resource=Resource.ISP,
                              dispatch_ns=0.0, ready_ns=0.0, start_ns=0.0,
                              end_ns=latency, compute_ns=latency,
                              data_movement_ns=0.0, overhead_ns=0.0)
            for i, latency in enumerate([100.0] * 99 + [1000.0])]
        result = ExecutionResult(
            workload="w", policy="p", total_time_ns=5e6, records=records,
            energy=EnergyBreakdown(compute_nj=1.0, data_movement_nj=1.0,
                                   per_resource_nj={}, per_transfer_kind_nj={}),
            breakdown=ExecutionBreakdown())
        model = ServiceModel.from_result(result)
        assert model.base_ns == 5e6
        assert model.tail_ratio > 1.0  # p99/mean of the tail-heavy sample


# ------------------------------------------------------------------------
# SLO accounting
# ------------------------------------------------------------------------


class TestSLO:
    def test_jain_fairness_bounds(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_tenant_slos_cover_every_tenant(self):
        config = FleetConfig(devices=2, requests=150, seed=8)
        outcome = FleetSimulator(config).simulate(TWO_TENANTS, MODELS,
                                                  offered_rps=300.0)
        slos = tenant_slos(outcome)
        assert [slo.tenant for slo in slos] == ["a", "b"]
        for slo in slos:
            assert slo.p50_ms <= slo.p99_ms <= slo.p999_ms
            assert 0.0 <= slo.satisfaction <= 1.0 + 1e-9

    def test_fleet_row_throughput_identity(self):
        config = FleetConfig(devices=2, requests=150, seed=8)
        outcome = FleetSimulator(config).simulate(TWO_TENANTS, MODELS,
                                                  offered_rps=300.0)
        row = fleet_slo_row(outcome)
        assert row["achieved_rps"] == pytest.approx(
            outcome.admitted / outcome.horizon_s)
        assert row["achieved_rps"] <= row["offered_rps"] + 1e-9
        assert 0.0 < row["fairness"] <= 1.0 + 1e-9


# ------------------------------------------------------------------------
# Property: random tenant mixes are deterministic under a seed
# ------------------------------------------------------------------------


@st.composite
def populations(draw):
    """Random multi-tenant populations over the workload registry."""
    count = draw(st.integers(min_value=1, max_value=3))
    raw_shares = draw(st.lists(
        st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
        min_size=count, max_size=count))
    total = sum(raw_shares)
    tenants = []
    for index in range(count):
        names = draw(st.lists(st.sampled_from(WORKLOAD_NAMES),
                              unique=True, min_size=1, max_size=3))
        weights = draw(st.lists(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
            min_size=len(names), max_size=len(names)))
        tenants.append(TenantSpec(
            name=f"tenant-{index}",
            mix=tuple(zip(names, weights)),
            arrival=draw(st.sampled_from(["poisson", "mmpp"])),
            share=raw_shares[index] / total))
    return validate_tenants(tenants)


@st.composite
def service_models(draw):
    return {name: ServiceModel(
        base_ns=draw(st.floats(min_value=1e5, max_value=5e7,
                               allow_nan=False)),
        tail_ratio=draw(st.floats(min_value=1.0, max_value=20.0,
                                  allow_nan=False)))
        for name in WORKLOAD_NAMES}


class TestRandomMixesProperty:
    @given(tenants=populations(), models=service_models(),
           seed=st.integers(min_value=0, max_value=2 ** 16),
           devices=st.integers(min_value=1, max_value=4),
           load=st.sampled_from([0.4, 0.9, 1.2]))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_bit_identical_slo_tables(self, tenants, models,
                                                seed, devices, load):
        config = FleetConfig(devices=devices, seed=seed, requests=120,
                             load_points=(load,))
        capacity = fleet_capacity_rps(tenants, models, config)

        def tables():
            outcome = FleetSimulator(config).simulate(
                tenants, models, offered_rps=load * capacity)
            return fleet_slo_row(outcome), tenant_slos(outcome), outcome

        row_a, slos_a, outcome_a = tables()
        row_b, slos_b, outcome_b = tables()
        assert row_a == row_b
        assert slos_a == slos_b
        assert outcome_a == outcome_b

    @given(tenants=populations(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_request_generation_deterministic_and_ordered(self, tenants,
                                                          seed):
        config = FleetConfig(seed=seed, requests=80)
        stream_a = generate_requests(tenants, 500.0, config)
        stream_b = generate_requests(tenants, 500.0, config)
        assert stream_a == stream_b
        times = [request.time_s for request in stream_a]
        assert times == sorted(times)
        for request in stream_a:
            assert 0.9 <= request.jitter <= 1.1


# ------------------------------------------------------------------------
# The registered experiment, end to end
# ------------------------------------------------------------------------

#: Tiny scale keeping the 12-pair calibration sweep fast.
SERVE_SCALE = 0.05


@pytest.fixture(scope="module")
def serve_results():
    """One serial and one sharded run of the full serve experiment."""
    config = ExperimentConfig(workload_scale=SERVE_SCALE)
    serial = run_serve(config, parallel=False, cache_dir=None)
    sharded = run_serve(config, parallel=True, workers=2, cache_dir=None)
    return serial, sharded


class TestServeExperiment:
    def test_registered_in_the_experiment_registry(self):
        assert "serve" in EXPERIMENT_REGISTRY
        definition = EXPERIMENT_REGISTRY["serve"]
        assert definition.policies == ("CPU", "Conduit")
        assert "6 workloads x 2 policies" in definition.axes_summary()

    def test_emits_load_vs_p99_curve_for_both_fleets(self, serve_results):
        serial, _ = serve_results
        rows = serial.sections["serve"]
        fleets = {row["fleet"] for row in rows}
        assert fleets == {"host-only", "offloaded"}
        loads = [row["load"] for row in rows if row["fleet"] == "host-only"]
        assert loads == sorted(loads) and len(loads) >= 4
        for row in rows:
            assert row["p50_ms"] <= row["p99_ms"] <= row["p999_ms"]
            assert row["achieved_rps"] <= row["offered_rps"] + 1e-9

    def test_tenant_section_covers_population_in_both_fleets(
            self, serve_results):
        serial, _ = serve_results
        rows = serial.sections["serve-tenants"]
        expected = {(mode, tenant.name)
                    for mode in ("host-only", "offloaded")
                    for tenant in DEFAULT_TENANTS}
        assert {(row["fleet"], row["tenant"]) for row in rows} == expected

    def test_serial_equals_sharded_bit_identically(self, serve_results):
        serial, sharded = serve_results
        assert serial.sections == sharded.sections
        assert serial.headline == sharded.headline

    def test_same_seed_rerun_is_bit_identical(self, serve_results):
        serial, _ = serve_results
        again = run_serve(ExperimentConfig(workload_scale=SERVE_SCALE),
                          parallel=False, cache_dir=None)
        assert again.sections == serial.sections
        assert again.headline == serial.headline

    def test_headline_names_both_fleets(self, serve_results):
        serial, _ = serve_results
        assert len(serial.headline) == 1
        assert "host-only" in serial.headline[0]
        assert "offloaded" in serial.headline[0]

    def test_custom_fleet_and_tenants(self):
        tenants = _population(
            TenantSpec(name="solo", mix=(("AES", 1.0),), share=1.0))
        fleet = FleetConfig(devices=2, requests=100, seed=4,
                            load_points=(0.5, 0.9))
        result = run_serve(ExperimentConfig(workload_scale=SERVE_SCALE),
                           fleet=fleet, tenants=tenants, parallel=False,
                           cache_dir=None)
        rows = result.sections["serve"]
        assert {row["load"] for row in rows} == {0.5, 0.9}
        # The narrowed calibration sweep covers exactly the mixed workload.
        assert {workload for workload, _, _ in result.grid} == {"AES"}

    def test_simulate_modes_shares_the_offered_ladder(self, serve_results):
        serial, _ = serve_results
        grid = serial.platform_grid("default")
        outcomes = simulate_modes(grid, FleetConfig(requests=60),
                                  DEFAULT_TENANTS)
        host = outcomes["host-only"]
        offloaded = outcomes["offloaded"]
        assert list(host) == list(offloaded)  # same load rungs
        for load in host:
            assert host[load].offered_rps == offloaded[load].offered_rps
