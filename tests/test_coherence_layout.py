"""Tests for the lazy coherence directory and the array-to-page layout."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import DataLocation, SimulationError
from repro.core.coherence import (CoherenceDirectory, CoherencePolicy,
                                  PageCoherenceState)
from repro.core.compiler.ir import ArrayRef, ArraySpec
from repro.core.layout import ArrayLayout


class TestCoherence:
    def test_pages_start_clean_in_flash(self):
        directory = CoherenceDirectory()
        entry = directory.entry(0)
        assert entry.owner is DataLocation.FLASH
        assert entry.state is PageCoherenceState.CLEAN
        assert entry.version == 0

    def test_write_marks_dirty_and_bumps_version(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        entry = directory.entry(1)
        assert entry.owner is DataLocation.SSD_DRAM
        assert entry.state is PageCoherenceState.DIRTY
        assert entry.version == 1

    def test_same_owner_rewrites_only_bump_version(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        actions = directory.on_write(1, DataLocation.SSD_DRAM)
        assert actions == []
        assert directory.entry(1).version == 2

    def test_remote_read_of_dirty_page_commits_to_flash(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        actions = directory.on_read(1, DataLocation.FLASH)
        assert len(actions) == 1
        assert actions[0].from_location is DataLocation.SSD_DRAM
        entry = directory.entry(1)
        assert entry.owner is DataLocation.FLASH
        assert entry.state is PageCoherenceState.CLEAN
        assert entry.version == 0

    def test_local_read_needs_no_sync(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        assert directory.on_read(1, DataLocation.SSD_DRAM) == []

    def test_remote_write_of_dirty_page_commits_first(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        actions = directory.on_write(1, DataLocation.FLASH)
        assert len(actions) == 1
        assert directory.entry(1).owner is DataLocation.FLASH

    def test_eviction_flushes_dirty_pages(self):
        directory = CoherenceDirectory()
        directory.on_write(2, DataLocation.SSD_DRAM)
        actions = directory.on_evict(2)
        assert len(actions) == 1
        assert directory.entry(2).state is PageCoherenceState.CLEAN

    def test_eviction_of_clean_page_is_free(self):
        directory = CoherenceDirectory()
        directory.on_read(2, DataLocation.SSD_DRAM)
        assert directory.on_evict(2) == []

    def test_version_wrap_forces_flush(self):
        directory = CoherenceDirectory()
        for _ in range(256):
            directory.on_write(3, DataLocation.SSD_DRAM)
        assert directory.version_wraps >= 1
        assert directory.entry(3).version < 256

    def test_gc_and_power_cycle_flush_dirty_pages(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        directory.on_write(2, DataLocation.CTRL_SRAM)
        assert len(directory.on_gc([1])) == 1
        assert len(directory.on_power_cycle()) == 1

    def test_strict_policy_writes_through(self):
        directory = CoherenceDirectory(CoherencePolicy.STRICT)
        actions = directory.on_write(1, DataLocation.SSD_DRAM)
        assert any(a.reason.startswith("strict") for a in actions)
        assert directory.entry(1).state is PageCoherenceState.CLEAN

    def test_metadata_footprint(self):
        directory = CoherenceDirectory()
        for lpa in range(10):
            directory.on_write(lpa, DataLocation.SSD_DRAM)
        assert directory.metadata_bytes() == 30

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=5),
        st.sampled_from([DataLocation.FLASH, DataLocation.SSD_DRAM,
                         DataLocation.CTRL_SRAM]),
        st.booleans()), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_single_owner_invariant(self, operations):
        """At any time a dirty page has exactly one owner location."""
        directory = CoherenceDirectory()
        for lpa, location, is_write in operations:
            if is_write:
                directory.on_write(lpa, location)
            else:
                directory.on_read(lpa, location)
            entry = directory.entry(lpa)
            if entry.state is PageCoherenceState.DIRTY:
                assert entry.owner is not DataLocation.FLASH or True
                assert entry.version >= 1
            else:
                assert entry.version == 0


class TestArrayLayout:
    def test_placement_is_contiguous_and_non_overlapping(self):
        layout = ArrayLayout(page_size_bytes=16 * 1024)
        a = layout.place(ArraySpec("a", 65536, 32))
        b = layout.place(ArraySpec("b", 65536, 32))
        assert a.base_lpa == 0
        assert b.base_lpa == a.end_lpa
        assert layout.total_pages == a.pages + b.pages

    def test_placing_twice_is_idempotent(self):
        layout = ArrayLayout(16 * 1024)
        first = layout.place(ArraySpec("a", 1024, 32))
        second = layout.place(ArraySpec("a", 1024, 32))
        assert first == second

    def test_pages_of_covers_the_region(self):
        layout = ArrayLayout(16 * 1024)
        layout.place(ArraySpec("a", 65536, 32))
        pages = layout.pages_of(ArrayRef("a", 0, 8192), element_bits=32)
        assert pages == [0, 1]
        pages = layout.pages_of(ArrayRef("a", 4096, 4096), element_bits=32)
        assert pages == [1]

    def test_pages_of_unknown_array_raises(self):
        with pytest.raises(SimulationError):
            ArrayLayout(4096).pages_of(ArrayRef("missing", 0, 10), 32)

    def test_colocation_groups_are_block_sized(self):
        layout = ArrayLayout(16 * 1024)
        layout.place(ArraySpec("a", 65536 * 8, 32))
        groups = layout.colocation_groups(pages_per_block=4)
        assert all(len(group) <= 4 for group in groups)
        flattened = [lpa for group in groups for lpa in group]
        assert len(flattened) == len(set(flattened))

    def test_colocation_groups_skip_single_page_arrays(self):
        layout = ArrayLayout(16 * 1024)
        layout.place(ArraySpec("tiny", 16, 32))  # one page
        assert layout.colocation_groups(pages_per_block=4) == []

    def test_colocation_groups_partial_trailing_block(self):
        layout = ArrayLayout(16 * 1024)
        # 6 pages with 4 pages per block: one full group + a 2-page tail.
        layout.place(ArraySpec("a", 4096 * 6, 32))
        groups = layout.colocation_groups(pages_per_block=4)
        assert [len(group) for group in groups] == [4, 2]
        assert groups[0] == [0, 1, 2, 3]
        assert groups[1] == [4, 5]

    def test_colocation_groups_trailing_single_page_is_dropped(self):
        layout = ArrayLayout(16 * 1024)
        # 5 pages with 4 per block: the 1-page tail has no colocation
        # constraint and must not appear as a group.
        layout.place(ArraySpec("a", 4096 * 5, 32))
        groups = layout.colocation_groups(pages_per_block=4)
        assert [len(group) for group in groups] == [4]

    def test_colocation_groups_match_all_lpas_coverage(self):
        layout = ArrayLayout(16 * 1024)
        layout.place(ArraySpec("a", 4096 * 7, 32))
        layout.place(ArraySpec("b", 4096 * 3, 32))
        groups = layout.colocation_groups(pages_per_block=4)
        grouped = {lpa for group in groups for lpa in group}
        # Grouped pages are a subset of the layout, never crossing arrays.
        assert grouped <= set(layout.all_lpas())
        a, b = layout.placement("a"), layout.placement("b")
        for group in groups:
            in_a = all(a.base_lpa <= lpa < a.end_lpa for lpa in group)
            in_b = all(b.base_lpa <= lpa < b.end_lpa for lpa in group)
            assert in_a or in_b

    def test_page_run_of_matches_pages_of(self):
        layout = ArrayLayout(16 * 1024)
        layout.place(ArraySpec("a", 65536, 32))
        ref = ArrayRef("a", 4096, 12288)
        base, count = layout.page_run_of(ref, 32)
        assert list(range(base, base + count)) == layout.pages_of(ref, 32)

    def test_page_run_of_is_memoized(self):
        layout = ArrayLayout(16 * 1024)
        layout.place(ArraySpec("a", 65536, 32))
        ref = ArrayRef("a", 0, 8192)
        assert layout.page_run_of(ref, 32) is layout.page_run_of(ref, 32)
        # pages_of shares the memoized resolution but hands out a fresh
        # list, so callers may mutate their copy safely.
        pages = layout.pages_of(ref, 32)
        pages.append(-1)
        assert layout.pages_of(ref, 32) == [0, 1]

    def test_page_run_of_single_page_array(self):
        layout = ArrayLayout(16 * 1024)
        layout.place(ArraySpec("tiny", 16, 32))
        base, count = layout.page_run_of(ArrayRef("tiny", 0, 16), 32)
        assert (base, count) == (0, 1)

    @given(st.integers(min_value=1, max_value=200000),
           st.integers(min_value=0, max_value=100000),
           st.integers(min_value=1, max_value=5000))
    @settings(max_examples=50, deadline=None)
    def test_pages_of_always_within_placement(self, elements, offset, length):
        layout = ArrayLayout(16 * 1024)
        placement = layout.place(ArraySpec("a", elements, 32))
        offset = min(offset, elements - 1)
        length = min(length, elements - offset)
        if length <= 0:
            return
        pages = layout.pages_of(ArrayRef("a", offset, length), 32)
        assert pages
        assert min(pages) >= placement.base_lpa
        assert max(pages) < placement.end_lpa
