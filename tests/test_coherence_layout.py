"""Tests for the lazy coherence directory and the array-to-page layout."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import DataLocation, SimulationError
from repro.core.coherence import (CoherenceDirectory, CoherencePolicy,
                                  PageCoherenceState)
from repro.core.compiler.ir import ArrayRef, ArraySpec
from repro.core.layout import ArrayLayout


class TestCoherence:
    def test_pages_start_clean_in_flash(self):
        directory = CoherenceDirectory()
        entry = directory.entry(0)
        assert entry.owner is DataLocation.FLASH
        assert entry.state is PageCoherenceState.CLEAN
        assert entry.version == 0

    def test_write_marks_dirty_and_bumps_version(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        entry = directory.entry(1)
        assert entry.owner is DataLocation.SSD_DRAM
        assert entry.state is PageCoherenceState.DIRTY
        assert entry.version == 1

    def test_same_owner_rewrites_only_bump_version(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        actions = directory.on_write(1, DataLocation.SSD_DRAM)
        assert actions == []
        assert directory.entry(1).version == 2

    def test_remote_read_of_dirty_page_commits_to_flash(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        actions = directory.on_read(1, DataLocation.FLASH)
        assert len(actions) == 1
        assert actions[0].from_location is DataLocation.SSD_DRAM
        entry = directory.entry(1)
        assert entry.owner is DataLocation.FLASH
        assert entry.state is PageCoherenceState.CLEAN
        assert entry.version == 0

    def test_local_read_needs_no_sync(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        assert directory.on_read(1, DataLocation.SSD_DRAM) == []

    def test_remote_write_of_dirty_page_commits_first(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        actions = directory.on_write(1, DataLocation.FLASH)
        assert len(actions) == 1
        assert directory.entry(1).owner is DataLocation.FLASH

    def test_eviction_flushes_dirty_pages(self):
        directory = CoherenceDirectory()
        directory.on_write(2, DataLocation.SSD_DRAM)
        actions = directory.on_evict(2)
        assert len(actions) == 1
        assert directory.entry(2).state is PageCoherenceState.CLEAN

    def test_eviction_of_clean_page_is_free(self):
        directory = CoherenceDirectory()
        directory.on_read(2, DataLocation.SSD_DRAM)
        assert directory.on_evict(2) == []

    def test_version_wrap_forces_flush(self):
        directory = CoherenceDirectory()
        for _ in range(256):
            directory.on_write(3, DataLocation.SSD_DRAM)
        assert directory.version_wraps >= 1
        assert directory.entry(3).version < 256

    def test_gc_and_power_cycle_flush_dirty_pages(self):
        directory = CoherenceDirectory()
        directory.on_write(1, DataLocation.SSD_DRAM)
        directory.on_write(2, DataLocation.CTRL_SRAM)
        assert len(directory.on_gc([1])) == 1
        assert len(directory.on_power_cycle()) == 1

    def test_strict_policy_writes_through(self):
        directory = CoherenceDirectory(CoherencePolicy.STRICT)
        actions = directory.on_write(1, DataLocation.SSD_DRAM)
        assert any(a.reason.startswith("strict") for a in actions)
        assert directory.entry(1).state is PageCoherenceState.CLEAN

    def test_metadata_footprint(self):
        directory = CoherenceDirectory()
        for lpa in range(10):
            directory.on_write(lpa, DataLocation.SSD_DRAM)
        assert directory.metadata_bytes() == 30

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=5),
        st.sampled_from([DataLocation.FLASH, DataLocation.SSD_DRAM,
                         DataLocation.CTRL_SRAM]),
        st.booleans()), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_single_owner_invariant(self, operations):
        """At any time a dirty page has exactly one owner location."""
        directory = CoherenceDirectory()
        for lpa, location, is_write in operations:
            if is_write:
                directory.on_write(lpa, location)
            else:
                directory.on_read(lpa, location)
            entry = directory.entry(lpa)
            if entry.state is PageCoherenceState.DIRTY:
                assert entry.owner is not DataLocation.FLASH or True
                assert entry.version >= 1
            else:
                assert entry.version == 0


class TestArrayLayout:
    def test_placement_is_contiguous_and_non_overlapping(self):
        layout = ArrayLayout(page_size_bytes=16 * 1024)
        a = layout.place(ArraySpec("a", 65536, 32))
        b = layout.place(ArraySpec("b", 65536, 32))
        assert a.base_lpa == 0
        assert b.base_lpa == a.end_lpa
        assert layout.total_pages == a.pages + b.pages

    def test_placing_twice_is_idempotent(self):
        layout = ArrayLayout(16 * 1024)
        first = layout.place(ArraySpec("a", 1024, 32))
        second = layout.place(ArraySpec("a", 1024, 32))
        assert first == second

    def test_pages_of_covers_the_region(self):
        layout = ArrayLayout(16 * 1024)
        layout.place(ArraySpec("a", 65536, 32))
        pages = layout.pages_of(ArrayRef("a", 0, 8192), element_bits=32)
        assert pages == [0, 1]
        pages = layout.pages_of(ArrayRef("a", 4096, 4096), element_bits=32)
        assert pages == [1]

    def test_pages_of_unknown_array_raises(self):
        with pytest.raises(SimulationError):
            ArrayLayout(4096).pages_of(ArrayRef("missing", 0, 10), 32)

    def test_colocation_groups_are_block_sized(self):
        layout = ArrayLayout(16 * 1024)
        layout.place(ArraySpec("a", 65536 * 8, 32))
        groups = layout.colocation_groups(pages_per_block=4)
        assert all(len(group) <= 4 for group in groups)
        flattened = [lpa for group in groups for lpa in group]
        assert len(flattened) == len(set(flattened))

    @given(st.integers(min_value=1, max_value=200000),
           st.integers(min_value=0, max_value=100000),
           st.integers(min_value=1, max_value=5000))
    @settings(max_examples=50, deadline=None)
    def test_pages_of_always_within_placement(self, elements, offset, length):
        layout = ArrayLayout(16 * 1024)
        placement = layout.place(ArraySpec("a", elements, 32))
        offset = min(offset, elements - 1)
        length = min(length, elements - offset)
        if length <= 0:
            return
        pages = layout.pages_of(ArrayRef("a", offset, length), 32)
        assert pages
        assert min(pages) >= placement.base_lpa
        assert max(pages) < placement.end_lpa
