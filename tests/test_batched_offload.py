"""Differential suite for the wave-batched offload decision engine.

``PlatformConfig.batched_offload`` front-loads feature collection per
dependence-free, page-disjoint wave (``repro.core.compiler.waves``) and
decides each member from the precollected batch; the per-instruction
path stays the bit-exact golden reference (mirroring the
``vectorized_movement`` contract).  Bit-equality -- not float tolerance
-- is the contract: the two engines must produce *identical*
:class:`ExecutionResult` trees, which is also what lets them share
sweep-cache entries (the engine flag is popped from
:func:`run_spec_key`).

Four layers:

* property-based sweep points (Hypothesis): random (workload, policy,
  scale, platform-variant, contention-feedback) combinations run on
  both engines -- feedback *on* matters because it exercises the live
  decision-time contention reads the batch deliberately does not cache;
* property-based synthetic programs (Hypothesis): random instruction
  streams (ops, operand overlap, dependency chains) on a tiny platform
  whose window pressure forces evictions, i.e. the hazard-counter
  fallback path;
* the vectorized cost-model argmin: ``CostFunction.select_batch`` must
  equal N sequential ``select`` calls on arbitrary feature matrices
  (ties, unsupported candidates and ablation configs included);
* the cache-key identity the engine split relies on, plus the wave
  slicer's structural invariants.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import KIB, MIB, OpType, Resource, SimulationError
from repro.core.compiler.ir import (ArrayRef, ArraySpec, VectorInstruction,
                                    VectorProgram)
from repro.core.compiler.waves import wave_plan
from repro.core.layout import ArrayLayout
from repro.core.offload.cost_model import CostFunction, CostModelConfig
from repro.core.offload.features import (InstructionFeatures,
                                         ResourceFeatures)
from repro.core.offload.policies import make_policy
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.core.runtime import ConduitRuntime
from repro.experiments import ExperimentConfig, ExperimentRunner, \
    platform_variant
from repro.experiments.runner import RunSpec, run_spec_key
from repro.ssd.config import small_ssd_config
from repro.workloads import workload_by_name

PROGRAM_OPS = sorted((OpType.ADD, OpType.MUL, OpType.XOR, OpType.AND),
                     key=lambda op: op.value)


def _assert_bit_equal(batched, reference):
    """Every field of the two execution results must match exactly."""
    assert batched.total_time_ns == reference.total_time_ns
    assert batched.total_energy_nj == reference.total_energy_nj
    assert batched.energy == reference.energy
    assert batched.breakdown == reference.breakdown
    assert batched.records == reference.records
    assert batched.offload_overhead_avg_ns == \
        reference.offload_overhead_avg_ns
    assert batched.offload_overhead_max_ns == \
        reference.offload_overhead_max_ns


class TestRandomSweepPoints:
    """Random rosters / scales / policies: batched == reference engine."""

    @given(workload=st.sampled_from(["AES", "XOR Filter", "jacobi-1d"]),
           policy=st.sampled_from(["Conduit", "DM-Offloading", "PuD-SSD",
                                   "Ideal"]),
           scale=st.sampled_from([0.02, 0.05]),
           variant=st.sampled_from(["default", "multicore-isp", "cxl-pud"]),
           feedback=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_engines_bit_equal(self, workload, policy, scale, variant,
                               feedback):
        results = []
        for batched in (True, False):
            platform = dataclasses.replace(
                platform_variant(variant), batched_offload=batched,
                contention_feedback=feedback)
            runner = ExperimentRunner(
                ExperimentConfig(workload_scale=scale, platform=platform))
            results.append(
                runner.run(workload_by_name(workload, scale=scale), policy))
        _assert_bit_equal(*results)


def _small_config(**overrides) -> PlatformConfig:
    return PlatformConfig(ssd=small_ssd_config(),
                          dram_compute_window_bytes=1 * MIB,
                          sram_window_bytes=256 * KIB,
                          host_cache_bytes=1 * MIB, **overrides)


#: One synthetic instruction: (op index, dest slot, source slots, chain).
#: Slots address 4096-element regions of two declared 64 Ki-element
#: arrays; overlapping slots keep waves short and window pressure on the
#: small platform above triggers the eviction-epoch fallback.
INSTRUCTION = st.tuples(
    st.integers(min_value=0, max_value=len(PROGRAM_OPS) - 1),
    st.integers(min_value=0, max_value=2 * 12 - 1),
    st.lists(st.integers(min_value=0, max_value=2 * 12 - 1),
             min_size=1, max_size=2),
    st.booleans())


def _build_program(stream) -> VectorProgram:
    arrays = [ArraySpec("a", 64 * 1024, 32), ArraySpec("b", 64 * 1024, 32)]
    program = VectorProgram("generated", arrays)

    def ref(slot: int) -> ArrayRef:
        return ArrayRef("ab"[slot // 12], (slot % 12) * 4096, 4096)

    for uid, (op_index, dest, sources, chain) in enumerate(stream):
        program.add(VectorInstruction(
            uid=uid, op=PROGRAM_OPS[op_index], dest=ref(dest),
            sources=tuple(ref(s) for s in sources),
            depends_on=(uid - 1,) if chain and uid else ()))
    return program


class TestRandomPrograms:
    """Random instruction streams: batched == reference engine."""

    @given(stream=st.lists(INSTRUCTION, min_size=1, max_size=24),
           policy=st.sampled_from(["Conduit", "DM-Offloading"]),
           feedback=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_engines_bit_equal(self, stream, policy, feedback):
        results = []
        for batched in (True, False):
            runtime = ConduitRuntime(
                SSDPlatform(_small_config(batched_offload=batched,
                                          contention_feedback=feedback)))
            results.append(runtime.execute(_build_program(stream),
                                           make_policy(policy)))
        _assert_bit_equal(*results)


class TestWavePlanInvariants:
    """Structural soundness of the dependency slicer."""

    @given(stream=st.lists(INSTRUCTION, min_size=1, max_size=32))
    @settings(max_examples=20, deadline=None)
    def test_waves_partition_in_program_order(self, stream):
        program = _build_program(stream)
        layout = ArrayLayout(_small_config().ssd.nand.page_size_bytes)
        layout.place_all(sorted(program.arrays.values(),
                                key=lambda spec: spec.name))
        plan = wave_plan(program, layout)
        flat = [index for wave in plan.waves for index in wave]
        assert flat == list(range(len(program.instructions)))

    @given(stream=st.lists(INSTRUCTION, min_size=1, max_size=32))
    @settings(max_examples=20, deadline=None)
    def test_wave_members_dependence_free_and_page_disjoint(self, stream):
        program = _build_program(stream)
        layout = ArrayLayout(_small_config().ssd.nand.page_size_bytes)
        layout.place_all(sorted(program.arrays.values(),
                                key=lambda spec: spec.name))
        plan = wave_plan(program, layout)
        instructions = program.instructions
        for wave in plan.waves:
            uids = {instructions[i].uid for i in wave}
            seen_intervals = []
            for i in wave:
                for dep in instructions[i].depends_on:
                    assert dep == instructions[i].uid or dep not in uids
                touched = list(plan.source_runs[i])
                if plan.dest_runs[i] is not None:
                    touched.append(plan.dest_runs[i])
                own = []
                for base, count in touched:
                    for other_base, other_end in seen_intervals:
                        assert not (base < other_end
                                    and other_base < base + count)
                    own.append((base, base + count))
                seen_intervals.extend(own)


RESOURCES = [Resource.ISP, Resource.PUD, Resource.IFP]

FEATURE_VALUES = st.sampled_from(
    [0.0, 1.0, 100.0, 1e6, 3.14159e3, 2.5e9])

RESOURCE_FEATURE = st.tuples(st.booleans(), FEATURE_VALUES, FEATURE_VALUES,
                             FEATURE_VALUES, FEATURE_VALUES, FEATURE_VALUES)

COST_CONFIG = st.builds(
    CostModelConfig,
    combine_delays_with_max=st.booleans(),
    include_data_movement=st.booleans(),
    include_queueing_delay=st.booleans(),
    include_dependence_delay=st.booleans(),
    include_compute_latency=st.booleans())


def _features(uid, rows) -> InstructionFeatures:
    per_resource = {
        resource: ResourceFeatures(resource, supported, compute, movement,
                                   queueing, dependence, contention)
        for resource, (supported, compute, movement, queueing, dependence,
                       contention) in zip(RESOURCES, rows)}
    return InstructionFeatures(uid, OpType.ADD, {}, per_resource, 0.0)


class TestSelectBatchEquivalence:
    """``select_batch`` == N sequential ``select`` calls, provably."""

    @given(matrix=st.lists(st.tuples(RESOURCE_FEATURE, RESOURCE_FEATURE,
                                     RESOURCE_FEATURE),
                           min_size=1, max_size=8),
           config=COST_CONFIG)
    @settings(max_examples=50, deadline=None)
    def test_matches_sequential_select(self, matrix, config):
        features_list = [_features(uid, rows)
                         for uid, rows in enumerate(matrix)]
        if not any(any(rows[i][0] for i in range(3)) for rows in matrix):
            matrix = None  # every column unsupported: both must raise
        sequential = CostFunction(config)
        batched = CostFunction(config)
        if matrix is None:
            with pytest.raises(SimulationError):
                for features in features_list:
                    sequential.select(features)
            with pytest.raises(SimulationError):
                batched.select_batch(features_list)
            return
        try:
            expected = [sequential.select(features)
                        for features in features_list]
        except SimulationError:
            with pytest.raises(SimulationError):
                batched.select_batch(features_list)
            return
        selected, totals = batched.select_batch(features_list)
        assert selected == [target for target, _ in expected]
        assert batched.evaluations == sequential.evaluations
        for column, (_, estimates) in enumerate(expected):
            for row, resource in enumerate(RESOURCES):
                assert totals[row, column] == \
                    estimates[resource].total_latency_ns

    def test_exact_tie_breaks_by_registration_order(self):
        rows = [(True, 10.0, 5.0, 0.0, 0.0, 0.0)] * 3
        features = _features(0, rows)
        cost = CostFunction()
        selected, _ = cost.select_batch([features])
        target, _ = cost.select(features)
        assert selected[0] is RESOURCES[0]
        assert target is RESOURCES[0]

    def test_empty_batch(self):
        selected, totals = CostFunction().select_batch([])
        assert selected == []
        assert totals.size == 0


class TestCacheKeyIdentity:
    """Both engines must share sweep-cache entries (bit-equal results)."""

    def test_engine_flag_excluded_from_run_spec_key(self):
        base = ExperimentConfig(workload_scale=0.05).platform
        on = dataclasses.replace(base, batched_offload=True)
        off = dataclasses.replace(base, batched_offload=False)
        assert (run_spec_key(RunSpec("AES", 0.05, "Conduit", on))
                == run_spec_key(RunSpec("AES", 0.05, "Conduit", off)))

    def test_other_platform_knobs_still_keyed(self):
        base = ExperimentConfig(workload_scale=0.05).platform
        feedback = dataclasses.replace(base, contention_feedback=True)
        assert (run_spec_key(RunSpec("AES", 0.05, "Conduit", base))
                != run_spec_key(RunSpec("AES", 0.05, "Conduit", feedback)))

    def test_reference_decisions_variant_registered(self):
        config = platform_variant("reference-decisions")
        assert config.batched_offload is False
        assert platform_variant("default").batched_offload is True
