"""Tests for the NAND flash array model."""

import pytest
from hypothesis import given, strategies as st

from repro.common import SimulationError
from repro.ssd.config import NANDConfig
from repro.ssd.nand import (FlashBlock, NANDArray, PageState,
                            PhysicalBlockAddress)


def small_nand() -> NANDConfig:
    return NANDConfig(channels=2, dies_per_channel=2, planes_per_die=1,
                      blocks_per_plane=8, pages_per_block=16)


class TestFlashBlock:
    def block(self) -> FlashBlock:
        return FlashBlock(PhysicalBlockAddress(0, 0, 0, 0), pages=4)

    def test_program_in_order(self):
        block = self.block()
        assert block.program(lpa=10) == 0
        assert block.program(lpa=11) == 1
        assert block.valid_pages == 2
        assert block.free_pages == 2

    def test_program_full_block_raises(self):
        block = self.block()
        for lpa in range(4):
            block.program(lpa)
        with pytest.raises(SimulationError):
            block.program(99)

    def test_invalidate_then_states(self):
        block = self.block()
        block.program(5)
        block.invalidate(0)
        assert block.state_of(0) is PageState.INVALID
        assert block.valid_pages == 0
        assert block.invalid_pages == 1

    def test_invalidate_free_page_raises(self):
        with pytest.raises(SimulationError):
            self.block().invalidate(0)

    def test_erase_resets_and_counts(self):
        block = self.block()
        block.program(1)
        block.erase()
        assert block.erase_count == 1
        assert block.valid_pages == 0
        assert block.write_cursor == 0
        assert block.state_of(0) is PageState.FREE

    def test_valid_lpas_excludes_invalidated(self):
        block = self.block()
        block.program(1)
        block.program(2)
        block.invalidate(0)
        assert block.valid_lpas() == [2]

    def test_page_states_dense_view(self):
        block = self.block()
        block.program(1)
        block.invalidate(0)
        block.program(2)
        assert block.page_states == [PageState.INVALID, PageState.VALID,
                                     PageState.FREE, PageState.FREE]


class TestNANDArray:
    def test_geometry(self):
        array = NANDArray(small_nand())
        assert array.total_blocks == 2 * 2 * 1 * 8
        assert array.free_block_count() == array.total_blocks

    def test_program_read_roundtrip(self):
        array = NANDArray(small_nand())
        address = PhysicalBlockAddress(0, 0, 0, 0)
        ppa = array.program_page(address, lpa=42)
        assert array.read_page(ppa) == 42

    def test_free_block_counter_tracks_programs_and_erases(self):
        array = NANDArray(small_nand())
        address = PhysicalBlockAddress(1, 0, 0, 3)
        before = array.free_block_count()
        array.program_page(address, 7)
        assert array.free_block_count() == before - 1
        array.invalidate_page(array.block(address).address.page(0))
        array.erase_block(address)
        assert array.free_block_count() == before

    def test_counters(self):
        array = NANDArray(small_nand())
        address = PhysicalBlockAddress(0, 1, 0, 0)
        ppa = array.program_page(address, 1)
        array.read_page(ppa)
        array.invalidate_page(ppa)
        array.erase_block(address)
        assert array.programs == 1
        assert array.reads == 1
        assert array.erases == 1

    def test_erase_count_stats(self):
        array = NANDArray(small_nand())
        address = PhysicalBlockAddress(0, 0, 0, 0)
        array.program_page(address, 1)
        array.invalidate_page(address.page(0))
        array.erase_block(address)
        minimum, mean, maximum = array.erase_count_stats()
        assert minimum == 0
        assert maximum == 1
        assert 0 < mean < 1

    def test_timing_helpers_match_config(self):
        config = small_nand()
        array = NANDArray(config)
        assert array.read_time_ns() == config.read_latency_ns
        assert array.program_time_ns() == config.program_latency_ns
        assert array.erase_time_ns() == config.erase_latency_ns

    @given(st.integers(min_value=1, max_value=16))
    def test_valid_page_count_matches_programs(self, pages):
        array = NANDArray(small_nand())
        address = PhysicalBlockAddress(0, 0, 0, 0)
        for lpa in range(pages):
            array.program_page(address, lpa)
        assert array.valid_page_count() == pages
