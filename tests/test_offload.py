"""Tests for feature collection, the cost function, transformation, policies."""

import pytest

from repro.common import OpType, Resource, SSD_RESOURCES
from repro.core.compiler.ir import ArrayRef, VectorInstruction
from repro.core.layout import ArrayLayout
from repro.core.offload.cost_model import CostFunction, CostModelConfig
from repro.core.offload.features import (FeatureCollector,
                                         FeatureCollectorConfig,
                                         InstructionFeatures,
                                         ResourceFeatures)
from repro.core.offload.policies import (AresFlashPolicy, BWOffloadingPolicy,
                                         ConduitPolicy, DMOffloadingPolicy,
                                         FlashCosmosPolicy, IdealPolicy,
                                         ISPOnlyPolicy, POLICY_REGISTRY,
                                         PolicyContext, PuDOnlyPolicy,
                                         make_policy)
from repro.core.offload.transform import InstructionTransformer
from repro.core.platform import SSDPlatform


def make_features(op=OpType.ADD, *, isp=(10.0, 0.0, 0.0, 0.0),
                  pud=(5.0, 0.0, 0.0, 0.0), ifp=(20.0, 0.0, 0.0, 0.0),
                  ifp_supported=True, pud_supported=True):
    """Build a synthetic feature vector: (compute, dm, queue, dependence)."""
    def resource_features(resource, values, supported):
        compute, movement, queue, dependence = values
        return ResourceFeatures(resource=resource, supported=supported,
                                expected_compute_latency_ns=compute,
                                data_movement_latency_ns=movement,
                                queueing_delay_ns=queue,
                                dependence_delay_ns=dependence)

    return InstructionFeatures(
        instruction_uid=0, op=op, operand_locations={},
        per_resource={
            Resource.ISP: resource_features(Resource.ISP, isp, True),
            Resource.PUD: resource_features(Resource.PUD, pud, pud_supported),
            Resource.IFP: resource_features(Resource.IFP, ifp, ifp_supported),
        },
        collection_latency_ns=1000.0)


def make_instruction(op=OpType.ADD):
    return VectorInstruction(uid=0, op=op, dest=None, sources=(),
                             vector_length=4096, element_bits=32)


@pytest.fixture
def context(platform):
    return PolicyContext(platform=platform, now=0.0, elapsed=1000.0)


class TestCostFunction:
    def test_equation_one_uses_max_of_delays(self):
        features = make_features(isp=(10.0, 5.0, 8.0, 3.0))
        estimate = CostFunction().estimate(
            features.feature(Resource.ISP))
        assert estimate.total_latency_ns == pytest.approx(10 + 5 + 8)

    def test_equation_one_sum_ablation(self):
        features = make_features(isp=(10.0, 5.0, 8.0, 3.0))
        config = CostModelConfig(combine_delays_with_max=False)
        estimate = CostFunction(config).estimate(
            features.feature(Resource.ISP))
        assert estimate.total_latency_ns == pytest.approx(10 + 5 + 8 + 3)

    def test_argmin_selects_cheapest_resource(self):
        target, estimates = CostFunction().select(make_features())
        assert target is Resource.PUD
        assert estimates[Resource.PUD].total_latency_ns == 5.0

    def test_unsupported_resources_are_excluded(self):
        features = make_features(pud=(1.0, 0, 0, 0), pud_supported=False)
        target, _ = CostFunction().select(features)
        assert target is Resource.ISP

    def test_feature_ablation_changes_choice(self):
        # With queueing disabled, the heavily queued PUD resource wins.
        features = make_features(pud=(5.0, 0.0, 100.0, 0.0),
                                 isp=(10.0, 0.0, 0.0, 0.0))
        default_target, _ = CostFunction().select(features)
        assert default_target is Resource.ISP
        ablated = CostFunction(CostModelConfig(include_queueing_delay=False))
        ablated_target, _ = ablated.select(features)
        assert ablated_target is Resource.PUD


class TestFeatureCollector:
    def collector(self, platform):
        layout = ArrayLayout(platform.page_size)
        from repro.core.compiler.ir import ArraySpec
        layout.place(ArraySpec("a", 1 << 20, 32))
        platform.setup_dataset(layout.all_lpas())
        return FeatureCollector(platform, layout), layout

    def test_collects_all_resources(self, platform):
        collector, _ = self.collector(platform)
        instruction = VectorInstruction(
            uid=0, op=OpType.ADD, dest=ArrayRef("a", 0, 4096),
            sources=(ArrayRef("a", 4096, 4096),))
        features = collector.collect(instruction, 0.0, 0.0)
        assert set(features.per_resource) == set(SSD_RESOURCES)
        assert features.collection_latency_ns > 0

    def test_unsupported_ops_get_infinite_compute(self, platform):
        collector, _ = self.collector(platform)
        instruction = VectorInstruction(
            uid=0, op=OpType.GATHER, dest=ArrayRef("a", 0, 4096),
            sources=(ArrayRef("a", 4096, 4096),))
        features = collector.collect(instruction, 0.0, 0.0)
        assert features.feature(Resource.IFP).supported is False
        assert features.feature(Resource.ISP).supported is True

    def test_flash_resident_operands_favor_ifp_movement(self, platform):
        collector, _ = self.collector(platform)
        instruction = VectorInstruction(
            uid=0, op=OpType.AND, dest=ArrayRef("a", 0, 4096),
            sources=(ArrayRef("a", 4096, 4096),))
        features = collector.collect(instruction, 0.0, 0.0)
        assert features.feature(Resource.IFP).data_movement_latency_ns == 0.0
        assert features.feature(Resource.PUD).data_movement_latency_ns > 0.0

    def test_dependence_delay_passthrough(self, platform):
        collector, _ = self.collector(platform)
        instruction = make_instruction()
        features = collector.collect(instruction, 0.0, 1234.0)
        assert features.feature(Resource.ISP).dependence_delay_ns == 1234.0

    def test_average_overhead_close_to_paper(self, platform):
        collector, _ = self.collector(platform)
        instruction = VectorInstruction(
            uid=0, op=OpType.ADD, dest=ArrayRef("a", 0, 4096),
            sources=(ArrayRef("a", 4096, 4096),))
        collector.collect(instruction, 0.0, 0.0)
        # Section 4.5: average 3.77 us; allow a generous band.
        assert 1_000.0 < collector.average_collection_latency_ns < 40_000.0


class TestTransformer:
    def test_native_mnemonics_per_resource(self, platform):
        transformer = InstructionTransformer(platform)
        assert transformer.native_op(OpType.ADD, Resource.ISP) == "vadd"
        assert transformer.native_op(OpType.ADD, Resource.PUD) == "bbop_add"
        assert transformer.native_op(OpType.AND, Resource.IFP) == "mws_and"
        assert (transformer.native_op(OpType.MUL, Resource.IFP)
                == "shift_and_add(loop)")

    def test_unsupported_pairs_raise(self, platform):
        transformer = InstructionTransformer(platform)
        with pytest.raises(Exception):
            transformer.native_op(OpType.GATHER, Resource.IFP)

    def test_table_size_close_to_paper(self, platform):
        transformer = InstructionTransformer(platform)
        # Paper: ~1.5 KiB translation table in SSD DRAM.
        assert transformer.table_bytes() <= 1536

    def test_split_matches_resource_granularity(self, platform):
        transformer = InstructionTransformer(platform)
        instruction = make_instruction()
        subs, chunk = transformer.split(instruction, Resource.PUD)
        assert subs == pytest.approx(
            instruction.size_bytes / platform.pud.row_bytes, abs=1)
        subs_ifp, _ = transformer.split(instruction, Resource.IFP)
        assert subs_ifp >= 1

    def test_transform_charges_lookup_latency(self, platform):
        transformer = InstructionTransformer(platform)
        transformed = transformer.transform(make_instruction(), Resource.PUD)
        assert transformed.lookup_latency_ns == 300.0
        assert transformer.average_latency_ns == 300.0


class TestPolicies:
    def test_registry_builds_every_policy(self):
        for name in POLICY_REGISTRY:
            assert make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(Exception):
            make_policy("nonsense")

    def test_conduit_uses_cost_function(self, context):
        policy = ConduitPolicy()
        assert policy.choose(make_instruction(), make_features(),
                             context) is Resource.PUD

    def test_ideal_picks_lowest_compute_latency(self, context):
        features = make_features(isp=(1.0, 0, 0, 0), pud=(5.0, 0, 0, 0),
                                 ifp=(2.0, 0, 0, 0))
        assert IdealPolicy().choose(make_instruction(), features,
                                    context) is Resource.ISP
        assert IdealPolicy().is_ideal

    def test_dm_offloading_minimizes_data_movement(self, context):
        features = make_features(isp=(1.0, 500.0, 0, 0),
                                 pud=(5.0, 400.0, 0, 0),
                                 ifp=(50.0, 0.0, 0, 0))
        assert DMOffloadingPolicy().choose(make_instruction(), features,
                                           context) is Resource.IFP

    def test_bw_offloading_prefers_idle_resources(self, platform):
        context = PolicyContext(platform=platform, now=0.0, elapsed=1e6)
        # Load the ISP queue so its utilization is non-zero.
        platform.queues[Resource.ISP].enqueue(1, 0.0, 1e6)
        platform.queues[Resource.ISP].reserve(1, 0.0, 1e6)
        choice = BWOffloadingPolicy().choose(make_instruction(),
                                             make_features(), context)
        assert choice in (Resource.PUD, Resource.IFP)

    def test_single_resource_policies(self, context):
        bitwise = make_features(op=OpType.AND)
        arithmetic = make_features(op=OpType.ADD)
        unsupported_ifp = make_features(op=OpType.SELECT,
                                        ifp_supported=False)
        assert ISPOnlyPolicy().choose(
            make_instruction(OpType.AND), bitwise, context) is Resource.ISP
        assert PuDOnlyPolicy().choose(
            make_instruction(OpType.ADD), arithmetic, context) is Resource.PUD
        assert FlashCosmosPolicy().choose(
            make_instruction(OpType.AND), bitwise, context) is Resource.IFP
        assert FlashCosmosPolicy().choose(
            make_instruction(OpType.ADD), arithmetic, context) is Resource.ISP
        assert AresFlashPolicy().choose(
            make_instruction(OpType.ADD), arithmetic, context) is Resource.IFP
        assert AresFlashPolicy().choose(
            make_instruction(OpType.SELECT), unsupported_ifp,
            context) is Resource.ISP
