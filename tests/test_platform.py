"""Tests for the integrated NDP platform (locations, movement, energy)."""

import pytest

from repro.common import DataLocation, KIB, MIB, OpType, Resource
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.energy.model import EnergyAccount
from repro.ssd.config import small_ssd_config


class TestEnergyAccount:
    def test_compute_and_movement_pools_are_separate(self):
        account = EnergyAccount()
        account.add_compute(Resource.PUD, 100.0)
        account.charge_pcie(1024)
        breakdown = account.breakdown()
        assert breakdown.compute_nj == pytest.approx(100.0)
        assert breakdown.data_movement_nj > 0
        assert 0 < breakdown.data_movement_fraction < 1

    def test_flash_charges(self):
        account = EnergyAccount()
        assert account.charge_flash_read(2) == pytest.approx(2 * 20_500.0)
        assert account.charge_channel_dma(1) == pytest.approx(7_656.0)
        assert account.charge_flash_program(1) > 0

    def test_static_power_counts_as_compute(self):
        account = EnergyAccount()
        account.charge_static(1_000_000.0, watts=8.0)
        assert account.compute_nj == pytest.approx(8_000_000.0)


class TestPlatformLocations:
    def test_dataset_starts_in_flash(self, platform):
        platform.setup_dataset(range(64))
        assert platform.location_of(3) is DataLocation.FLASH
        histogram = platform.locations_of_pages(range(64))
        assert histogram == {DataLocation.FLASH: 64}

    def test_ensure_pages_at_moves_and_tracks(self, platform):
        platform.setup_dataset(range(16))
        end = platform.ensure_pages_at(0.0, [0, 1], DataLocation.SSD_DRAM)
        assert end > 0
        assert platform.location_of(0) is DataLocation.SSD_DRAM
        assert platform.movement.flash_to_dram_pages == 2

    def test_repeated_ensure_is_free(self, platform):
        platform.setup_dataset(range(16))
        first = platform.ensure_pages_at(0.0, [0], DataLocation.SSD_DRAM)
        second = platform.ensure_pages_at(first, [0], DataLocation.SSD_DRAM)
        assert second == first

    def test_window_capacity_evicts_lru(self, small_ssd):
        config = PlatformConfig(ssd=small_ssd,
                                dram_compute_window_bytes=4 * 16 * KIB,
                                host_cache_bytes=1 * MIB)
        platform = SSDPlatform(config)
        platform.setup_dataset(range(32))
        platform.ensure_pages_at(0.0, range(8), DataLocation.SSD_DRAM)
        # Window holds 4 pages, so the first pages have been evicted.
        assert platform.location_of(0) is DataLocation.FLASH
        assert platform.location_of(7) is DataLocation.SSD_DRAM

    def test_mark_produced_sets_residence(self, platform):
        platform.setup_dataset(range(8))
        platform.mark_produced(0.0, [1, 2], DataLocation.SSD_DRAM)
        assert platform.location_of(1) is DataLocation.SSD_DRAM

    def test_host_transfers_tracked(self, platform):
        platform.setup_dataset(range(4))
        platform.ensure_pages_at(0.0, [0], DataLocation.HOST)
        assert platform.movement.host_pages == 1
        assert platform.ssd.nvme.bytes_to_host > 0


class TestMoveEstimates:
    def test_same_location_is_free(self, platform):
        assert platform.estimate_move_latency(DataLocation.FLASH,
                                              DataLocation.FLASH, 5) == 0.0

    def test_flash_to_dram_cheaper_than_dram_to_flash(self, platform):
        to_dram = platform.estimate_move_latency(DataLocation.FLASH,
                                                 DataLocation.SSD_DRAM, 1)
        to_flash = platform.estimate_move_latency(DataLocation.SSD_DRAM,
                                                  DataLocation.FLASH, 1)
        assert to_flash > to_dram  # programming is far slower than reading

    def test_estimates_scale_with_page_count(self, platform):
        one = platform.estimate_move_latency(DataLocation.FLASH,
                                             DataLocation.SSD_DRAM, 1)
        four = platform.estimate_move_latency(DataLocation.FLASH,
                                              DataLocation.SSD_DRAM, 4)
        assert four == pytest.approx(4 * one)


class TestComputeDispatch:
    def test_compute_latency_ordering_for_bitwise(self, platform):
        # For bulk bitwise work, PuD-SSD is fastest, ISP slowest per op.
        size = 16 * KIB
        pud = platform.compute_latency(Resource.PUD, OpType.AND, size, 8)
        isp = platform.compute_latency(Resource.ISP, OpType.AND, size, 8)
        assert pud < isp

    def test_ifp_multiplication_is_expensive(self, platform):
        size = 16 * KIB
        ifp_mul = platform.compute_latency(Resource.IFP, OpType.MUL, size, 8)
        pud_mul = platform.compute_latency(Resource.PUD, OpType.MUL, size, 8)
        assert ifp_mul > pud_mul

    def test_unsupported_ops_reported(self, platform):
        assert not platform.supports(Resource.IFP, OpType.SELECT)
        assert not platform.supports(Resource.PUD, OpType.GATHER)
        assert platform.supports(Resource.ISP, OpType.GATHER)

    def test_record_compute_accumulates_energy(self, platform):
        before = platform.energy.compute_nj
        latency = platform.record_compute(0.0, Resource.PUD, OpType.ADD,
                                          16 * KIB, 8)
        assert latency > 0
        assert platform.energy.compute_nj > before

    def test_bandwidth_utilization_zero_before_activity(self, platform):
        for resource in (Resource.ISP, Resource.PUD, Resource.IFP):
            assert platform.bandwidth_utilization(resource, 1e6) == 0.0
