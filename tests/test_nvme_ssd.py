"""Tests for the NVMe interface and the top-level SSD storage device."""

import pytest

from repro.common import SimulationError
from repro.ssd.config import SSDConfig, small_ssd_config
from repro.ssd.nvme import (AdminCommand, AdminOpcode, NVMeInterface,
                            SSDMode)
from repro.ssd.ssd import SSD


class TestNVMeInterface:
    def interface(self) -> NVMeInterface:
        return NVMeInterface(SSDConfig().host_interface)

    def test_host_transfer_latency_scales_with_size(self):
        nvme = self.interface()
        small = nvme.host_transfer(0.0, 4096, "ssd-to-host")
        large = nvme.host_transfer(small.end_ns, 1 << 20, "ssd-to-host")
        assert large.latency_ns > small.latency_ns

    def test_invalid_direction_raises(self):
        with pytest.raises(SimulationError):
            self.interface().host_transfer(0.0, 4096, "sideways")

    def test_firmware_download_then_commit_registers_binary(self):
        nvme = self.interface()
        end = nvme.submit_admin(0.0, AdminCommand(
            AdminOpcode.FIRMWARE_DOWNLOAD, payload_bytes=256 * 1024,
            conduit_binary=True))
        end = nvme.submit_admin(end, AdminCommand(AdminOpcode.FIRMWARE_COMMIT))
        assert nvme.latest_binary is not None
        assert nvme.latest_binary.size_bytes == 256 * 1024
        assert end > 0

    def test_commit_without_download_raises(self):
        with pytest.raises(SimulationError):
            self.interface().submit_admin(0.0, AdminCommand(
                AdminOpcode.FIRMWARE_COMMIT))

    def test_download_binary_convenience(self):
        nvme = self.interface()
        end = nvme.download_binary(0.0, 64 * 1024)
        assert nvme.latest_binary.size_bytes == 64 * 1024
        assert end > 0

    def test_bytes_counters(self):
        nvme = self.interface()
        nvme.host_transfer(0.0, 100, "ssd-to-host")
        nvme.host_transfer(0.0, 200, "host-to-ssd")
        assert nvme.bytes_to_host == 100
        assert nvme.bytes_from_host == 200

    def test_computation_mode_blocks_host_io(self):
        nvme = self.interface()
        nvme.enter_computation_mode()
        assert nvme.mode is SSDMode.COMPUTATION
        with pytest.raises(SimulationError):
            nvme.check_host_io_allowed()
        nvme.enter_regular_io_mode()
        nvme.check_host_io_allowed()


class TestSSDDevice:
    def ssd(self) -> SSD:
        return SSD(small_ssd_config())

    def test_populate_places_all_pages(self):
        ssd = self.ssd()
        ssd.populate(range(100))
        assert ssd.ftl.mapped_pages() == 100

    def test_populate_with_colocation(self):
        ssd = self.ssd()
        ssd.populate(range(20), colocated_groups=[[0, 1, 2, 3]])
        blocks = {ssd.location_of(lpa).block_address() for lpa in range(4)}
        assert len(blocks) == 1

    def test_read_page_charges_latency(self):
        ssd = self.ssd()
        ssd.populate([1])
        access = ssd.read_page(0.0, 1)
        assert access.latency_ns >= ssd.config.nand.read_latency_ns

    def test_read_unmapped_raises(self):
        with pytest.raises(SimulationError):
            self.ssd().read_page(0.0, 12345)

    def test_write_page_updates_mapping(self):
        ssd = self.ssd()
        ssd.populate([1])
        before = ssd.location_of(1)
        access = ssd.write_page(0.0, 1)
        assert ssd.location_of(1) != before
        assert access.latency_ns >= ssd.config.nand.program_latency_ns

    def test_host_io_round_trip(self):
        ssd = self.ssd()
        ssd.populate(range(4))
        read_done = ssd.host_read(0.0, [0, 1])
        write_done = ssd.host_write(read_done, [2, 3])
        assert write_done > read_done > 0
        assert ssd.nvme.bytes_to_host > 0
        assert ssd.nvme.bytes_from_host > 0

    def test_host_io_rejected_in_computation_mode(self):
        ssd = self.ssd()
        ssd.populate([0])
        ssd.enter_computation_mode()
        with pytest.raises(SimulationError):
            ssd.host_read(0.0, [0])
        ssd.enter_regular_io_mode()
        ssd.host_read(0.0, [0])
