"""Trace ingestion, zipf generation, the open workload registry, and the
``traces`` experiment wiring.

Covers the contract the sweep engine relies on: content-defined workloads
are deterministic functions of ``(name, scale, cache_identity)``, rebuild
bit-identically in parallel workers, and fold their content hash /
generator parameters into every sweep cache key.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.__main__ import build_parser, main as cli_main
from repro.common import MIB, SimulationError
from repro.core.platform import PlatformConfig
from repro.experiments import (DEFAULT_WORKLOAD_SCALE, ExperimentConfig,
                               ExperimentRunner, RunSpec, run_experiment,
                               run_spec_key)
from repro.experiments.runner import execute_run_spec
from repro.serve.tenants import TenantSpec
from repro.ssd.config import small_ssd_config
from repro.workloads import (ALL_WORKLOADS, MQSIM_MINI_NAME,
                             WORKLOAD_REGISTRY, ZIPF_HOT_NAME, ScaleFloorWarning,
                             TraceWorkload, ZipfParams, ZipfWorkload,
                             available_workloads, register_workload,
                             workload_by_name)
from repro.workloads.traces import (VECTOR_RUN_SECTORS, TraceRow,
                                    coalesce_runs, fixture_trace_path,
                                    format_mqsim_trace, generate_zipf_rows,
                                    load_mqsim_trace, parse_mqsim_trace,
                                    register_trace_workload,
                                    trace_fingerprint, zipf_workload_factory)

TINY_SCALE = 0.03

#: Rows in the checked-in fixture (16 + 10 + 8 + 6 + 4; comments excluded).
FIXTURE_ROWS = 44


@pytest.fixture
def tiny_config() -> ExperimentConfig:
    platform = PlatformConfig(ssd=small_ssd_config(),
                              dram_compute_window_bytes=1 * MIB,
                              sram_window_bytes=256 * 1024,
                              host_cache_bytes=1 * MIB)
    return ExperimentConfig(workload_scale=TINY_SCALE, platform=platform)


@pytest.fixture
def scratch_registry():
    """Restores WORKLOAD_REGISTRY after a test that registers names."""
    snapshot = dict(WORKLOAD_REGISTRY)
    yield WORKLOAD_REGISTRY
    WORKLOAD_REGISTRY.clear()
    WORKLOAD_REGISTRY.update(snapshot)


def result_fingerprint(result) -> Tuple:
    return (result.workload, result.policy, result.total_time_ns,
            result.total_energy_nj, result.energy.compute_nj,
            result.energy.data_movement_nj,
            tuple((r.uid, r.op, r.resource, r.dispatch_ns, r.end_ns)
                  for r in result.records))


# ------------------------------------------------------------------------
# MQSim trace parser
# ------------------------------------------------------------------------


class TestParser:
    def test_fixture_parses(self):
        rows = load_mqsim_trace(fixture_trace_path())
        assert len(rows) == FIXTURE_ROWS
        assert all(isinstance(row, TraceRow) for row in rows)
        arrivals = [row.arrival_ns for row in rows]
        assert arrivals == sorted(arrivals)

    def test_round_trip_preserves_rows(self):
        rows = load_mqsim_trace(fixture_trace_path())
        assert parse_mqsim_trace(format_mqsim_trace(rows)) == rows

    def test_whitespace_and_comments_are_tolerated(self):
        text = ("# header comment\n"
                "\n"
                "0\t0\t0\t256\t1\n"
                "100   0    256  8  W   # trailing comment\n"
                "  200 0 264 8 R\n")
        rows = parse_mqsim_trace(text)
        assert len(rows) == 3
        assert rows[0].sectors == 256 and not rows[0].is_write
        assert rows[1].is_write and rows[1].lba == 256
        assert not rows[2].is_write

    def test_letter_and_numeric_opcodes_agree(self):
        numeric = parse_mqsim_trace("0 0 0 8 0\n100 0 8 8 1\n")
        letters = parse_mqsim_trace("0 0 0 8 W\n100 0 8 8 R\n")
        assert numeric == letters

    @pytest.mark.parametrize("line,fragment", [
        ("0 0 0 256", "expected 5 fields"),
        ("0 0 0 256 1 9", "expected 5 fields"),
        ("zero 0 0 256 1", "arrival"),
        ("0 0 -5 256 1", "LBA"),
        ("0 0 0 0 1", "size"),
        ("0 0 0 256 5", "opcode"),
    ])
    def test_malformed_line_names_the_line_number(self, line, fragment):
        text = f"# comment\n0 0 0 8 1\n{line}\n"
        with pytest.raises(SimulationError) as excinfo:
            parse_mqsim_trace(text, source="bad.trace")
        message = str(excinfo.value)
        assert message.startswith("bad.trace:3:")
        assert fragment in message

    def test_decreasing_arrivals_rejected(self):
        with pytest.raises(SimulationError, match=":2:.*non-decreasing"):
            parse_mqsim_trace("100 0 0 8 1\n50 0 8 8 1\n")

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError, match="no requests"):
            parse_mqsim_trace("# only comments\n\n")

    def test_fingerprint_ignores_formatting_but_not_content(self):
        base = parse_mqsim_trace("0 0 0 8 1\n100 0 8 8 0\n")
        reformatted = parse_mqsim_trace(
            "# comment\n0\t0\t0\t8\tR\n\n100  0  8  8  W\n")
        changed = parse_mqsim_trace("0 0 0 8 1\n100 0 16 8 0\n")
        assert trace_fingerprint(base) == trace_fingerprint(reformatted)
        assert trace_fingerprint(base) != trace_fingerprint(changed)


# ------------------------------------------------------------------------
# Lowering
# ------------------------------------------------------------------------


class TestLowering:
    def test_fixture_runs_coalesce(self):
        rows = load_mqsim_trace(fixture_trace_path())
        runs = coalesce_runs(rows)
        # The 16 leading sequential reads coalesce into one run.
        assert len(runs[0]) == 16
        assert sum(row.sectors for row in runs[0]) == 16 * 256

    def test_fixture_lowered_program_vectorizes(self):
        workload = TraceWorkload.from_file(fixture_trace_path(),
                                           scale=TINY_SCALE)
        program, report = workload.vector_program()
        assert len(program) > 0
        program.validate()
        # The sequential runs must become vectorizable work, the
        # interleaved small accesses must not.
        assert 0.0 < report.vectorizable_fraction < 1.0

    def test_small_accesses_become_one_scalar_section(self):
        workload = TraceWorkload.from_file(fixture_trace_path(),
                                           scale=TINY_SCALE)
        program = workload.build_program()
        names = [section.name for section in program.scalar_sections]
        assert names == ["interleaved_small_accesses"]
        long_runs = [run for run in coalesce_runs(workload.rows)
                     if sum(r.sectors for r in run) >= VECTOR_RUN_SECTORS]
        assert len(program.loops) == len(long_runs)

    def test_cache_identity_pins_the_content(self):
        rows = load_mqsim_trace(fixture_trace_path())
        workload = TraceWorkload(rows, name="t", scale=TINY_SCALE)
        assert workload.cache_identity() == (
            ("trace", trace_fingerprint(rows)),)
        mutated = TraceWorkload(rows[:-1], name="t", scale=TINY_SCALE)
        assert workload.cache_identity() != mutated.cache_identity()

    def test_empty_rows_rejected(self):
        with pytest.raises(SimulationError, match="at least one"):
            TraceWorkload((), name="empty")


# ------------------------------------------------------------------------
# Zipf generation
# ------------------------------------------------------------------------

SMALL_ZIPF = dict(footprint_bytes=1 * MIB, requests=96, segments=16)


class TestZipf:
    def test_generation_is_deterministic(self):
        params = ZipfParams(**SMALL_ZIPF)
        assert generate_zipf_rows(params) == generate_zipf_rows(params)

    def test_seed_changes_the_stream(self):
        a = generate_zipf_rows(ZipfParams(seed=1, **SMALL_ZIPF))
        b = generate_zipf_rows(ZipfParams(seed=2, **SMALL_ZIPF))
        assert a != b

    def test_hot_fraction_concentrates_traffic(self):
        params = ZipfParams(theta=1.2, hot_fraction=0.1, **SMALL_ZIPF)
        rows = generate_zipf_rows(params)
        hot_sectors = (params.footprint_bytes // 512) * params.hot_fraction
        hot = sum(1 for row in rows if row.lba < hot_sectors)
        # With theta=1.2 the top-ranked (hot-packed) segments absorb far
        # more than the uniform expectation (hot_fraction = 0.1).
        assert hot / len(rows) > 4 * params.hot_fraction

    def test_read_fraction_zero_and_one(self):
        writes = generate_zipf_rows(ZipfParams(read_fraction=0.0,
                                               **SMALL_ZIPF))
        reads = generate_zipf_rows(ZipfParams(read_fraction=1.0,
                                              **SMALL_ZIPF))
        assert all(row.is_write for row in writes)
        assert not any(row.is_write for row in reads)

    def test_describe_covers_every_field(self):
        params = ZipfParams()
        description = params.describe()
        for spec_field in dataclasses.fields(params):
            assert f"{spec_field.name}=" in description

    @pytest.mark.parametrize("kwargs", [
        dict(theta=-0.1), dict(hot_fraction=0.0), dict(hot_fraction=1.0),
        dict(read_fraction=1.5), dict(requests=0), dict(request_sectors=0),
        dict(segments=1), dict(sequential_burst=-0.2),
    ])
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            ZipfParams(**kwargs)

    @given(seed=st.integers(min_value=0, max_value=2**31),
           theta=st.sampled_from([0.5, 0.99, 1.2]),
           read_fraction=st.sampled_from([0.0, 0.5, 0.7, 1.0]))
    @settings(max_examples=25, deadline=None)
    def test_same_params_rebuild_bit_identical_programs(self, seed, theta,
                                                        read_fraction):
        params = ZipfParams(seed=seed, theta=theta,
                            read_fraction=read_fraction, **SMALL_ZIPF)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ScaleFloorWarning)
            a = ZipfWorkload(scale=0.5, params=params)
            b = ZipfWorkload(scale=0.5, params=params)
            assert a.rows == b.rows
            assert a.cache_identity() == b.cache_identity()
            pa, pb = a.build_program(), b.build_program()
        assert [(loop.name, loop.trip_count) for loop in pa.loops] == \
            [(loop.name, loop.trip_count) for loop in pb.loops]
        assert pa.footprint_bytes() == pb.footprint_bytes()


# ------------------------------------------------------------------------
# Open registry
# ------------------------------------------------------------------------


class TestOpenRegistry:
    def test_builtin_entries_registered(self):
        names = available_workloads()
        assert ZIPF_HOT_NAME in names and MQSIM_MINI_NAME in names
        # The paper's six stay first, in figure order.
        assert names[:6] == tuple(w.name for w in ALL_WORKLOADS)

    def test_duplicate_registration_rejected(self, scratch_registry):
        with pytest.raises(ValueError, match="already registered"):
            register_workload(ZIPF_HOT_NAME, ZipfWorkload)
        register_workload(ZIPF_HOT_NAME, ZipfWorkload, overwrite=True)

    def test_registered_workload_builds_by_name(self, scratch_registry):
        params = ZipfParams(seed=7, **SMALL_ZIPF)
        register_workload("zipf-test",
                          zipf_workload_factory(params, name="zipf-test"))
        workload = workload_by_name("zipf-test", scale=TINY_SCALE)
        assert isinstance(workload, ZipfWorkload)
        assert workload.params == params
        assert "zipf-test" in available_workloads()

    def test_register_trace_workload_names_from_stem(self, scratch_registry,
                                                     tmp_path):
        path = tmp_path / "custom.trace"
        path.write_text("0 0 0 256 1\n100 0 256 256 1\n")
        name = register_trace_workload(str(path))
        assert name == "custom"
        workload = workload_by_name("custom", scale=TINY_SCALE)
        assert len(workload.rows) == 2

    def test_registered_entry_appears_in_repro_list(self, scratch_registry,
                                                    capsys):
        register_workload("zipf-test", zipf_workload_factory(
            ZipfParams(**SMALL_ZIPF), name="zipf-test"))
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "zipf-test" in out
        assert ZIPF_HOT_NAME in out and MQSIM_MINI_NAME in out

    def test_tenant_mix_can_name_registered_workloads(self):
        tenant = TenantSpec(name="skewed",
                            mix=((ZIPF_HOT_NAME, 2.0),
                                 (MQSIM_MINI_NAME, 1.0)))
        assert tenant.workloads() == (ZIPF_HOT_NAME, MQSIM_MINI_NAME)

    def test_serial_and_parallel_sweeps_are_bit_identical(self, tiny_config,
                                                          scratch_registry):
        register_workload("zipf-test", zipf_workload_factory(
            ZipfParams(seed=11, **SMALL_ZIPF), name="zipf-test"))
        workloads = [workload_by_name("zipf-test", scale=TINY_SCALE),
                     workload_by_name(MQSIM_MINI_NAME, scale=TINY_SCALE)]
        serial = ExperimentRunner(tiny_config).sweep(
            ("CPU", "Conduit"), workloads, parallel=False)
        parallel = ExperimentRunner(tiny_config).sweep(
            ("CPU", "Conduit"), workloads, parallel=True, workers=2)
        assert list(serial) == list(parallel)
        for key in serial:
            assert result_fingerprint(serial[key]) == \
                result_fingerprint(parallel[key])


# ------------------------------------------------------------------------
# Cache-key identity folding
# ------------------------------------------------------------------------


class TestCacheKeyIdentity:
    def test_workload_params_perturb_the_key(self):
        base = RunSpec(workload="t", scale=TINY_SCALE, policy="CPU")
        with_params = dataclasses.replace(
            base, workload_params=(("trace", "deadbeef"),))
        other_params = dataclasses.replace(
            base, workload_params=(("trace", "cafef00d"),))
        assert run_spec_key(base) != run_spec_key(with_params)
        assert run_spec_key(with_params) != run_spec_key(other_params)

    def test_spec_for_folds_the_cache_identity(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        workload = workload_by_name(ZIPF_HOT_NAME, scale=TINY_SCALE)
        spec = runner.spec_for(workload, "CPU")
        assert spec.workload_params == workload.cache_identity()
        assert spec.workload_params[0][0] == "zipf"

    def test_zipf_params_change_the_key(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        a = ZipfWorkload(scale=TINY_SCALE, params=ZipfParams(seed=1),
                         name=ZIPF_HOT_NAME)
        b = ZipfWorkload(scale=TINY_SCALE, params=ZipfParams(seed=2),
                         name=ZIPF_HOT_NAME)
        assert run_spec_key(runner.spec_for(a, "CPU")) != \
            run_spec_key(runner.spec_for(b, "CPU"))

    def test_trace_content_changes_the_key(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        rows = load_mqsim_trace(fixture_trace_path())
        a = TraceWorkload(rows, name="t", scale=TINY_SCALE)
        b = TraceWorkload(rows[:-1], name="t", scale=TINY_SCALE)
        assert run_spec_key(runner.spec_for(a, "CPU")) != \
            run_spec_key(runner.spec_for(b, "CPU"))

    def test_worker_rejects_stale_identity(self):
        spec = RunSpec(workload=ZIPF_HOT_NAME, scale=TINY_SCALE,
                       policy="CPU",
                       workload_params=(("zipf", "stale-params"),))
        with pytest.raises(ValueError, match="registry entry changed"):
            execute_run_spec(spec)

    def test_parallel_sweep_rejects_mismatched_instance(self, tiny_config):
        # An instance whose identity no longer matches its registry entry
        # must be caught before any worker runs it.
        runner = ExperimentRunner(tiny_config)
        impostor = ZipfWorkload(scale=TINY_SCALE,
                                params=ZipfParams(seed=999),
                                name=ZIPF_HOT_NAME)
        with pytest.raises(ValueError, match="no longer matches"):
            runner.sweep(("CPU",), [impostor], parallel=True, workers=1)


# ------------------------------------------------------------------------
# CLI and experiment wiring
# ------------------------------------------------------------------------


class TestCLIWiring:
    def test_scale_help_derives_from_the_single_constant(self):
        assert ExperimentConfig().workload_scale == DEFAULT_WORKLOAD_SCALE
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if getattr(action, "choices", None)
                          and "run" in action.choices)
        for command in ("run", "compare"):
            help_text = subparsers.choices[command].format_help()
            assert f"default: {DEFAULT_WORKLOAD_SCALE}" in help_text

    def test_with_traces_widens_the_workload_axis(self, scratch_registry):
        from repro.__main__ import _with_traces
        from repro.experiments import experiment_def
        definition = _with_traces(experiment_def("fig10"),
                                  [fixture_trace_path()])
        assert definition.workloads[-1] == "mini_mqsim"
        assert "mini_mqsim" in WORKLOAD_REGISTRY
        # Idempotent: the same command re-registers without erroring.
        again = _with_traces(definition, [fixture_trace_path()])
        assert again.workloads.count("mini_mqsim") == 1

    def test_trace_flag_extends_the_sweep(self, scratch_registry, capsys,
                                          tmp_path):
        cache_dir = str(tmp_path / "cache")
        # fig10 sweeps 1 workload x 3 policies; --trace widens it to 2 x 3.
        rc = cli_main(["run", "fig10", "--scale", "0.05", "--serial",
                       "--cache-dir", cache_dir, "-v",
                       "--trace", fixture_trace_path()])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pairs=6" in out
        assert "mini_mqsim" in WORKLOAD_REGISTRY

    def test_trace_flag_rejects_composites(self, scratch_registry, capsys):
        rc = cli_main(["run", "report", "--trace", fixture_trace_path()])
        err = capsys.readouterr().err
        assert rc == 2
        assert "composite" in err

    def test_trace_flag_reports_missing_file(self, capsys, tmp_path):
        rc = cli_main(["run", "fig10",
                       "--trace", str(tmp_path / "missing.trace")])
        err = capsys.readouterr().err
        assert rc == 2
        assert "missing.trace" in err

    def test_trace_flag_reports_malformed_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.trace"
        bad.write_text("100 0 0 8 X\n")
        rc = cli_main(["run", "fig10", "--trace", str(bad)])
        err = capsys.readouterr().err
        assert rc == 2
        assert "bad.trace:1" in err
        assert "opcode" in err

    def test_traces_experiment_runs_tiny(self, tiny_config):
        result = run_experiment("traces", tiny_config, parallel=False)
        assert "fresh-vs-aged" in result.sections
        assert "default/uniform-vs-skewed" in result.sections
        names = {row["workload"]
                 for row in result.sections["fresh-vs-aged"]}
        assert ZIPF_HOT_NAME in names and MQSIM_MINI_NAME in names
        assert result.headline  # the skew/age comparison lines
