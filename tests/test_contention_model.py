"""Tests for the contention-aware offload cost model.

Three layers of coverage, mirroring how the feature is built:

* **Monitor invariants** -- :class:`LinkContentionMonitor` EWMA/clamping
  semantics and the relative-overrun normalization.
* **Simulation invariants** (property-style, on a real platform):

  - with zero traffic, feedback-on feature vectors and cost estimates
    equal feedback-off *exactly* (bit-for-bit);
  - movement estimates are monotonically non-decreasing in the injected
    (observed) link overrun of the candidate's path;
  - feedback never changes the selected backend when only one candidate
    exists.

* **The regression the feature exists to close** -- on the ``cxl-pud``
  roster at the golden scale, LLM Training with ``contention_feedback``
  is no slower than the greedy cost model and no slower than the
  host-only baseline (the exact failure mode the ROADMAP documented).

Plus the plumbing guarantees: the new config fields are folded into the
sweep-cache key, and a feedback-on sweep is serial == parallel
bit-identical (EWMA state is per-run, never leaked across shards).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common import MIB, OpType, SimulationError
from repro.core.compiler.ir import ArrayRef, ArraySpec, VectorInstruction
from repro.core.contention import MAX_OVERRUN_RATIO, LinkContentionMonitor
from repro.core.layout import ArrayLayout
from repro.core.offload.cost_model import CostFunction
from repro.core.offload.features import FeatureCollector
from repro.core.platform import PlatformConfig, SSDPlatform
from repro.experiments import (ExperimentConfig, ExperimentRunner,
                               platform_variant, run_spec_key,
                               with_contention_feedback)
from repro.ssd.config import small_ssd_config
from repro.workloads import Jacobi1DWorkload, workload_by_name

#: Scale the cxl-pud regression test runs at: the golden scale, where the
#: ROADMAP documented the LLM-Training roster-ablation row regressing.
REGRESSION_SCALE = 0.25


def tiny_platform_config(**overrides) -> PlatformConfig:
    return PlatformConfig(ssd=small_ssd_config(),
                          dram_compute_window_bytes=1 * MIB,
                          sram_window_bytes=256 * 1024,
                          host_cache_bytes=1 * MIB, **overrides)


def make_instruction(uid: int = 0) -> VectorInstruction:
    return VectorInstruction(
        uid=uid, op=OpType.ADD, dest=ArrayRef("a", 0, 4096),
        sources=(ArrayRef("a", 4096, 4096), ArrayRef("b", 0, 4096)))


def collector_on(platform: SSDPlatform) -> FeatureCollector:
    layout = ArrayLayout(platform.page_size)
    layout.place(ArraySpec("a", 1 << 20, 32))
    layout.place(ArraySpec("b", 1 << 20, 32))
    platform.setup_dataset(layout.all_lpas())
    return FeatureCollector(platform, layout)


class TestLinkContentionMonitor:
    def test_first_observation_seeds_directly(self):
        monitor = LinkContentionMonitor(alpha=0.25)
        monitor.observe_movement("host", 100.0, 400.0)
        assert monitor.overrun("host") == 4.0

    def test_ewma_blends_later_samples(self):
        monitor = LinkContentionMonitor(alpha=0.5)
        monitor.observe_movement("host", 100.0, 400.0)
        monitor.observe_movement("host", 100.0, 200.0)
        assert monitor.overrun("host") == pytest.approx(3.0)

    def test_faster_than_estimate_clamps_to_one(self):
        monitor = LinkContentionMonitor()
        monitor.observe_movement("ssd-dram", 100.0, 10.0)
        assert monitor.overrun("ssd-dram") == 1.0
        assert monitor.scale("ssd-dram") == 1.0

    def test_outlier_clamped_so_paths_stay_correctable(self):
        monitor = LinkContentionMonitor(alpha=1.0)
        monitor.observe_movement("host", 1.0, 1e9)
        assert monitor.overrun("host") == MAX_OVERRUN_RATIO

    def test_zero_estimate_carries_no_signal(self):
        monitor = LinkContentionMonitor()
        monitor.observe_movement("host", 0.0, 500.0)
        assert monitor.samples == 0
        assert monitor.overrun("host") == 1.0

    def test_relative_overrun_cancels_the_common_leg(self):
        monitor = LinkContentionMonitor(alpha=1.0, gain=1.0)
        monitor.observe_movement("ssd-dram", 100.0, 400.0)
        monitor.observe_movement("host", 100.0, 600.0)
        # Both paths congested 4x/6x; only the excess separates them.
        assert monitor.relative_overrun("ssd-dram") == 1.0
        assert monitor.relative_overrun("host") == pytest.approx(1.5)
        assert monitor.scale("ssd-dram") == 1.0
        assert monitor.scale("host") == pytest.approx(1.5)

    def test_unobserved_path_is_assumed_as_good_as_the_best(self):
        monitor = LinkContentionMonitor(alpha=1.0)
        monitor.observe_movement("host", 100.0, 900.0)
        assert monitor.relative_overrun("flash") == 1.0
        assert monitor.scale("flash") == 1.0

    def test_gain_amplifies_the_relative_excess(self):
        monitor = LinkContentionMonitor(alpha=1.0, gain=2.0)
        monitor.observe_movement("ssd-dram", 100.0, 100.0)
        monitor.observe_movement("host", 100.0, 300.0)
        assert monitor.scale("host") == pytest.approx(1.0 + 2.0 * 2.0)

    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.5])
    def test_invalid_alpha_rejected(self, alpha):
        with pytest.raises(SimulationError, match="alpha"):
            LinkContentionMonitor(alpha=alpha)

    def test_negative_gain_rejected(self):
        with pytest.raises(SimulationError, match="gain"):
            LinkContentionMonitor(gain=-1.0)

    def test_negative_observation_rejected(self):
        monitor = LinkContentionMonitor()
        with pytest.raises(SimulationError, match="negative"):
            monitor.observe_movement("host", 100.0, -1.0)


class TestZeroTrafficEquivalence:
    """Feedback on, nothing observed => estimates identical to feedback off."""

    @pytest.mark.parametrize("variant", ["default", "multicore-isp",
                                         "cxl-pud"])
    def test_feature_vectors_bit_equal(self, variant):
        base = platform_variant(variant, base=tiny_platform_config())
        off = SSDPlatform(base)
        on = SSDPlatform(with_contention_feedback(base))
        instruction = make_instruction()
        features_off = collector_on(off).collect(instruction, 0.0, 0.0)
        features_on = collector_on(on).collect(instruction, 0.0, 0.0)
        assert features_on.candidates == features_off.candidates
        for resource in features_off.candidates:
            lhs = features_off.feature(resource)
            rhs = features_on.feature(resource)
            assert rhs.contention_delay_ns == 0.0
            assert (rhs.contended_data_movement_latency_ns ==
                    lhs.data_movement_latency_ns)
            for field in ("supported", "expected_compute_latency_ns",
                          "data_movement_latency_ns", "queueing_delay_ns",
                          "dependence_delay_ns"):
                assert getattr(rhs, field) == getattr(lhs, field), field

    def test_cost_estimates_and_selection_bit_equal(self):
        base = platform_variant("cxl-pud", base=tiny_platform_config())
        off = SSDPlatform(base)
        on = SSDPlatform(with_contention_feedback(base))
        instruction = make_instruction()
        features_off = collector_on(off).collect(instruction, 0.0, 0.0)
        features_on = collector_on(on).collect(instruction, 0.0, 0.0)
        target_off, estimates_off = CostFunction().select(features_off)
        target_on, estimates_on = CostFunction().select(features_on)
        assert target_on == target_off
        for resource in estimates_off:
            assert (estimates_on[resource].total_latency_ns ==
                    estimates_off[resource].total_latency_ns)

    def test_collection_latency_charges_the_feedback_read(self):
        # The only permitted difference under zero traffic: reading the
        # feedback table costs collection time (Section 4.5 style).
        base = tiny_platform_config()
        off = SSDPlatform(base)
        on = SSDPlatform(with_contention_feedback(base))
        instruction = make_instruction()
        features_off = collector_on(off).collect(instruction, 0.0, 0.0)
        features_on = collector_on(on).collect(instruction, 0.0, 0.0)
        assert (features_on.collection_latency_ns >
                features_off.collection_latency_ns)


class TestMonotonicity:
    """Estimates never decrease as observed path contention increases."""

    def test_movement_estimate_monotone_in_observed_overrun(self):
        base = with_contention_feedback(
            platform_variant("cxl-pud", base=tiny_platform_config()))
        instruction = make_instruction()
        previous = None
        for observed in (100.0, 200.0, 400.0, 800.0, 1600.0):
            platform = SSDPlatform(base)
            collector = collector_on(platform)
            # Inject host-path contention: one observed movement that took
            # `observed` ns against a 100 ns uncontended estimate.
            platform.observe_movement_contention(
                next(r for r in platform.offload_candidates()
                     if r.value == "cxl-pud"), 100.0, observed)
            features = collector.collect(instruction, 0.0, 0.0)
            host_backed = [features.feature(r)
                           for r in features.candidates
                           if platform.backends[r].home_location.value ==
                           "host"]
            assert host_backed, "cxl-pud roster must offer a host-home tier"
            estimate = sum(f.contended_data_movement_latency_ns
                           for f in host_backed)
            if previous is not None:
                assert estimate >= previous
            previous = estimate

    def test_total_cost_monotone_in_observed_overrun(self):
        base = with_contention_feedback(
            platform_variant("cxl-pud", base=tiny_platform_config()))
        instruction = make_instruction()
        cxl = None
        previous = None
        for observed in (1.0, 3.0, 9.0):
            platform = SSDPlatform(base)
            collector = collector_on(platform)
            cxl = next(r for r in platform.offload_candidates()
                       if r.value == "cxl-pud")
            platform.observe_movement_contention(cxl, 1.0, observed)
            features = collector.collect(instruction, 0.0, 0.0)
            estimate = CostFunction().estimate(features.feature(cxl))
            if previous is not None:
                assert estimate.total_latency_ns >= previous
            previous = estimate.total_latency_ns

    def test_other_paths_unaffected_by_host_contention(self):
        # Contention observed on the host path must not inflate the
        # estimates of candidates that never cross it.
        base = with_contention_feedback(
            platform_variant("cxl-pud", base=tiny_platform_config()))
        instruction = make_instruction()
        quiet = SSDPlatform(base)
        features_quiet = collector_on(quiet).collect(instruction, 0.0, 0.0)
        noisy = SSDPlatform(base)
        collector = collector_on(noisy)
        cxl = next(r for r in noisy.offload_candidates()
                   if r.value == "cxl-pud")
        noisy.observe_movement_contention(cxl, 100.0, 900.0)
        features_noisy = collector.collect(instruction, 0.0, 0.0)
        for resource in features_noisy.candidates:
            if noisy.backends[resource].home_location.value == "host":
                continue
            assert (features_noisy.feature(resource).data_movement_latency_ns
                    == features_quiet.feature(resource)
                    .data_movement_latency_ns)


class TestSingleCandidateInvariance:
    def test_feedback_never_changes_a_forced_selection(self):
        base = with_contention_feedback(tiny_platform_config())
        platform = SSDPlatform(base)
        collector = collector_on(platform)
        instruction = make_instruction()
        pud = next(r for r in platform.offload_candidates()
                   if r.value == "pud-ssd")
        # Saturate the pud path's observed contention, then restrict the
        # candidate set to pud alone: the argmin has no alternative, so
        # the (huge) penalty must not change the selection.
        platform.observe_movement_contention(pud, 1.0, 1e9)
        features = collector.collect(instruction, 0.0, 0.0)
        features.per_resource = {pud: features.feature(pud)}
        target, estimates = CostFunction().select(features)
        assert target == pud
        assert list(estimates) == [pud]


class TestCacheKeyAndSweepIdentity:
    def test_contention_fields_fold_into_the_cache_key(self):
        config = ExperimentConfig(workload_scale=0.03,
                                  platform=tiny_platform_config())
        runner = ExperimentRunner(config)
        workload = Jacobi1DWorkload(scale=0.03)
        plain = runner.spec_for(workload, "Conduit")
        for grown in (with_contention_feedback(config.platform),
                      dataclasses.replace(config.platform,
                                          contention_feedback=True,
                                          contention_gain=3.0),
                      dataclasses.replace(config.platform,
                                          contention_feedback=True,
                                          contention_ewma_alpha=0.9)):
            spec = runner.spec_for(workload, "Conduit", platform=grown)
            assert run_spec_key(spec) != run_spec_key(plain)

    def test_feedback_on_sweep_serial_equals_parallel(self):
        # EWMA state lives on the per-run platform: a sharded sweep must
        # reproduce the serial grid bit-exactly (no feedback leakage
        # between runs or across pool workers).
        config = ExperimentConfig(workload_scale=0.03,
                                  platform=tiny_platform_config())
        platforms = ("default-feedback", "cxl-pud-feedback")
        policies = ("Conduit", "DM-Offloading")
        workloads = [Jacobi1DWorkload(scale=0.03)]
        serial = ExperimentRunner(config).sweep(policies, workloads,
                                                platforms=platforms)
        parallel = ExperimentRunner(config).sweep(policies, workloads,
                                                  platforms=platforms,
                                                  parallel=True, workers=2)
        assert list(serial) == list(parallel)
        for key, lhs in serial.items():
            rhs = parallel[key]
            assert lhs.total_time_ns == rhs.total_time_ns, key
            assert lhs.total_energy_nj == rhs.total_energy_nj, key
            assert len(lhs.records) == len(rhs.records), key
            for ours, theirs in zip(lhs.records, rhs.records):
                assert ours.resource is theirs.resource, key
                assert ours.end_ns == theirs.end_ns, key

    def test_back_to_back_feedback_runs_identical(self):
        # The monitor must start clean for every run.
        config = ExperimentConfig(
            workload_scale=0.05,
            platform=with_contention_feedback(tiny_platform_config()))
        runner = ExperimentRunner(config)
        workload = workload_by_name("XOR Filter", scale=0.05)
        first = runner.run(workload, "Conduit")
        second = runner.run(workload, "Conduit")
        assert first.total_time_ns == second.total_time_ns
        assert first.total_energy_nj == second.total_energy_nj


class TestCXLRegressionClosed:
    """The acceptance criterion: the documented LLM-Training failure mode."""

    @pytest.fixture(scope="class")
    def times(self):
        config = ExperimentConfig(workload_scale=REGRESSION_SCALE)
        runner = ExperimentRunner(config)
        grid = runner.sweep(
            ("Conduit", "CPU"),
            [workload_by_name("LLM Training", scale=REGRESSION_SCALE)],
            platforms=("cxl-pud", "cxl-pud-feedback"))
        return {
            "greedy": grid[("LLM Training", "Conduit",
                            "cxl-pud")].total_time_ns,
            "feedback": grid[("LLM Training", "Conduit",
                              "cxl-pud-feedback")].total_time_ns,
            "host": grid[("LLM Training", "CPU", "cxl-pud")].total_time_ns,
        }

    def test_feedback_no_worse_than_greedy(self, times):
        assert times["feedback"] <= times["greedy"]

    def test_feedback_no_worse_than_host_only(self, times):
        # The documented failure mode: the greedy cost model made the NDP
        # platform *lose* to simply running on the host.  With feedback it
        # must not.
        assert times["feedback"] <= times["host"]

    def test_the_greedy_regression_is_real(self, times):
        # Guard the guard: if the greedy model stops regressing (e.g. a
        # future modelling change), this test documents that the fixture
        # no longer exercises the failure mode and should be re-pointed.
        assert times["greedy"] > times["host"]


class TestContentionDecay:
    """``decay`` re-opens paths the argmin stopped choosing."""

    def test_invalid_decay_rejected(self):
        with pytest.raises(SimulationError):
            LinkContentionMonitor(decay=-0.1)
        with pytest.raises(SimulationError):
            LinkContentionMonitor(decay=1.5)

    def test_zero_decay_preserves_stale_penalty_forever(self):
        monitor = LinkContentionMonitor(alpha=1.0, decay=0.0)
        monitor.observe_movement("flash->dram", 100.0, 500.0)
        for _ in range(50):
            monitor.observe_movement("flash->host", 100.0, 100.0)
        # The default never forgets: the penalized path's average is
        # untouched by other paths' observations (historical behavior).
        assert monitor.overrun("flash->dram") == 5.0

    def test_unobserved_path_relaxes_toward_one_geometrically(self):
        monitor = LinkContentionMonitor(alpha=1.0, decay=0.5)
        monitor.observe_movement("flash->dram", 100.0, 500.0)
        assert monitor.overrun("flash->dram") == 5.0
        expected = 5.0
        for _ in range(4):
            monitor.observe_movement("flash->host", 100.0, 100.0)
            expected = 1.0 + (expected - 1.0) * 0.5
            assert monitor.overrun("flash->dram") == expected
        # After a few foreign observations the stale penalty has almost
        # fully relaxed, so the path prices near contention-free again
        # and the argmin will re-explore it.
        assert monitor.overrun("flash->dram") == pytest.approx(1.25)

    def test_observed_path_itself_is_not_decayed(self):
        monitor = LinkContentionMonitor(alpha=1.0, decay=0.5)
        monitor.observe_movement("flash->dram", 100.0, 500.0)
        # A fresh observation of the same path folds in via the EWMA only;
        # the decay applies to *other* paths, never the observed one.
        monitor.observe_movement("flash->dram", 100.0, 500.0)
        assert monitor.overrun("flash->dram") == 5.0

    def test_decay_restores_exploration_scale(self):
        monitor = LinkContentionMonitor(alpha=1.0, gain=1.0, decay=0.5)
        monitor.observe_movement("flash->dram", 100.0, 300.0)
        monitor.observe_movement("flash->host", 100.0, 100.0)
        assert monitor.scale("flash->dram") > 1.0
        for _ in range(30):
            monitor.observe_movement("flash->host", 100.0, 100.0)
        # The penalty has decayed to within a hair of 1.0.
        assert monitor.scale("flash->dram") == pytest.approx(1.0, abs=1e-6)

    def test_platform_config_plumbs_decay_into_monitor(self):
        config = tiny_platform_config(contention_feedback=True,
                                      contention_decay=0.25)
        platform = SSDPlatform(config)
        assert platform.contention.decay == 0.25
        # And the default keeps the knob off (bit-exact historical paths).
        assert SSDPlatform(tiny_platform_config()).contention.decay == 0.0

    def test_decay_knob_changes_the_cache_key(self):
        from repro.experiments.runner import RunSpec
        base = ExperimentConfig(workload_scale=0.05).platform
        decayed = dataclasses.replace(base, contention_decay=0.25)
        key_a = run_spec_key(RunSpec("AES", 0.05, "Conduit", base))
        key_b = run_spec_key(RunSpec("AES", 0.05, "Conduit", decayed))
        assert key_a != key_b
