"""Scenario: bulk encryption of SSD-resident data (AES, in-flash bitwise).

Data-at-rest encryption sweeps every page of a dataset with bulk-bitwise
rounds -- the paper's AES workload.  Because the operation mix is almost
entirely bulk-bitwise and the data already lives on flash, the interesting
question is how much of the work the offloader can keep inside the flash
chips (Flash-Cosmos multi-wordline sensing) and the SSD DRAM (MIMDRAM-style
bbops) instead of dragging pages to the controller cores or the host.

Run with:  python examples/encryption_at_rest.py
"""

from repro.common import Resource
from repro.core.metrics import energy_reduction, speedup
from repro.experiments import ExperimentConfig, ExperimentRunner, format_table
from repro.workloads import AESWorkload, characterize

POLICIES = ("CPU", "ISP", "Flash-Cosmos", "PuD-SSD", "Conduit")


def main() -> None:
    config = ExperimentConfig(workload_scale=0.1)
    runner = ExperimentRunner(config)
    workload = AESWorkload(scale=config.workload_scale)

    characteristics = characterize(workload)
    print("AES workload characteristics (Table 3 row):")
    print(f"  vectorizable code: {characteristics.vectorizable_fraction:.0%}"
          f"  average reuse: {characteristics.average_reuse:.1f}"
          f"  bitwise share: {characteristics.low_latency_fraction:.0%}")

    results = {policy: runner.run(workload, policy) for policy in POLICIES}
    cpu = results["CPU"]
    rows = []
    for policy, result in results.items():
        fractions = result.ssd_resource_fractions()
        rows.append({
            "policy": policy,
            "time_ms": result.total_time_ns / 1e6,
            "speedup_vs_cpu": speedup(cpu, result),
            "energy_vs_cpu": (result.total_energy_nj / cpu.total_energy_nj
                              if cpu.total_energy_nj else 0.0),
            "ifp_share": fractions.get(Resource.IFP, 0.0),
            "pud_share": fractions.get(Resource.PUD, 0.0),
        })
    print(format_table(rows))

    conduit = results["Conduit"]
    print(f"\nConduit: {speedup(cpu, conduit):.2f}x over CPU, "
          f"{100 * energy_reduction(cpu, conduit):.0f}% energy reduction")


if __name__ == "__main__":
    main()
