"""Scenario: split the ISP pool into per-core backends -- via config only.

The paper's configuration exposes the SSD controller's compute cores as a
single ISP resource with one execution queue.  Setting
``PlatformConfig(isp_cores=n)`` instead registers ``isp[0..n)`` -- one
backend per core, each with its own queue -- so the cost function sees and
balances per-core contention, and control-heavy instructions no longer
serialize behind one queue.

No offloader, cost-model or policy code changes: the registry is the only
thing that grew.

Run with:  python examples/multicore_isp.py
"""

from repro import (ConduitPolicy, ConduitRuntime, PlatformConfig,
                   SSDPlatform, speedup)
from repro.common import MIB, Resource
from repro.workloads import LLMTrainingWorkload


def run(isp_cores: int):
    platform = SSDPlatform(PlatformConfig(
        dram_compute_window_bytes=2 * MIB, host_cache_bytes=2 * MIB,
        isp_cores=isp_cores))
    print(f"\nisp_cores={isp_cores}: backends = "
          f"{', '.join(platform.backends.roster())}")
    workload = LLMTrainingWorkload(scale=0.1)
    program, _ = workload.vector_program()
    result = ConduitRuntime(platform).execute(program, ConduitPolicy(),
                                              workload.name)
    mix = {str(resource.value): f"{fraction:.1%}"
           for resource, fraction in result.ssd_resource_fractions().items()
           if fraction > 0}
    print(f"  total time: {result.total_time_ns / 1e6:.3f} ms")
    print(f"  decision mix: {mix}")
    return result


def main() -> None:
    single = run(1)
    multi = run(4)
    print(f"\nPer-core ISP queues vs pooled ISP: "
          f"{speedup(single, multi):.3f}x")
    # The cost function spread ISP-bound work across the cores it saw.
    isp_share = multi.kind_fractions()[Resource.ISP]
    print(f"ISP-family share with 4 per-core backends: {isp_share:.1%}")


if __name__ == "__main__":
    main()
