"""Scenario: add a CXL-attached PuD tier -- via config only.

``PlatformConfig(cxl_pud=CXLPuDConfig())`` registers a second PuD backend
(``cxl-pud``) with its own DRAM device, bank pool, bbop latency/energy
point and CXL link round-trip, homed in host memory.  The cost function
immediately weighs it against the in-SSD resources: once the in-SSD PuD
queue backs up under compute-heavy phases, the argmin spills work to the
CXL tier -- without a single edit to the offloader or cost model.

Run with:  python examples/cxl_pud_tier.py
"""

from repro import (CXLPuDConfig, ConduitPolicy, ConduitRuntime,
                   PlatformConfig, SSDPlatform)
from repro.common import MIB
from repro.workloads import LlamaInferenceWorkload


def run(cxl_pud):
    platform = SSDPlatform(PlatformConfig(
        dram_compute_window_bytes=2 * MIB, host_cache_bytes=2 * MIB,
        cxl_pud=cxl_pud))
    print(f"\nbackends = {', '.join(platform.backends.roster())}")
    workload = LlamaInferenceWorkload(scale=0.1)
    program, _ = workload.vector_program()
    result = ConduitRuntime(platform).execute(program, ConduitPolicy(),
                                              workload.name)
    mix = {str(resource.value): f"{fraction:.1%}"
           for resource, fraction in result.ssd_resource_fractions().items()
           if fraction > 0}
    print(f"  total time: {result.total_time_ns / 1e6:.3f} ms")
    print(f"  decision mix: {mix}")
    return result


def main() -> None:
    base = run(None)
    grown = run(CXLPuDConfig())
    delta = base.total_time_ns / grown.total_time_ns
    print(f"\nCXL-PuD tier vs default roster: {delta:.3f}x "
          f"({'faster' if delta > 1 else 'slower'})")


if __name__ == "__main__":
    main()
