"""Scenario: register a platform variant and an experiment, then sweep.

The declarative experiment API makes the evaluation a service with three
extension points, all exercised here without touching the core:

1. register a *platform variant* -- a named factory growing the platform's
   backend roster (here: a hypothetical low-latency CXL PuD part);
2. register an *experiment* -- a declarative ``ExperimentDef`` naming its
   policy/workload axes and building its table from the swept grid;
3. run the (workloads x policies x platforms) cross-product with
   ``run_experiment`` -- sharded and cached exactly like the paper's
   figures, and equally available as
   ``python -m repro run cxl-link-study --platform ...``.

Run with:  python examples/platform_axis_sweep.py
"""

import dataclasses
from collections import OrderedDict

from repro import CXLPuDConfig
from repro.experiments import (ExperimentConfig, ExperimentDef,
                               register_experiment,
                               register_platform_variant, run_experiment)

POLICIES = ("CPU", "DM-Offloading", "Conduit")
PLATFORMS = ("default", "cxl-pud", "fast-cxl-pud")


def fast_cxl_pud(base):
    """A CXL expander with a third of the stock command round-trip."""
    return dataclasses.replace(
        base, cxl_pud=CXLPuDConfig(link_latency_ns=200.0,
                                   link_energy_nj=25.0))


def link_study_rows(ctx):
    """One row per (workload, platform): does the faster link win work?"""
    rows = []
    for workload in ctx.workloads:
        cpu_ns = ctx.grid[(workload.name, "CPU", "default")].total_time_ns
        for platform in ctx.platform_names:
            result = ctx.grid[(workload.name, "Conduit", platform)]
            fractions = result.ssd_resource_fractions()
            on_cxl = sum(value for resource, value in fractions.items()
                         if str(resource) == "cxl-pud")
            rows.append({
                "workload": workload.name,
                "platform": platform,
                "conduit_speedup_vs_cpu": cpu_ns / result.total_time_ns,
                "work_on_cxl_tier": on_cxl,
            })
    return OrderedDict(link_study=rows)


def main() -> None:
    register_platform_variant("fast-cxl-pud", fast_cxl_pud)
    definition = register_experiment(ExperimentDef(
        name="cxl-link-study",
        title="Conduit across CXL link-latency points",
        policies=POLICIES,
        workloads=("LLM Training", "LlaMA2 Inference"),
        default_platforms=PLATFORMS,
        build=link_study_rows,
    ))
    result = run_experiment(definition,
                            ExperimentConfig(workload_scale=0.1),
                            parallel=False)
    print("Custom experiment over a custom platform axis "
          f"({result.stats[0][1].summary()}):\n")
    for name, text in result.formatted().items():
        print(f"== {name} ==")
        print(text)


if __name__ == "__main__":
    main()
