"""Scenario: offloading INT8 LLM inference into the SSD.

The paper's headline workload is INT8 LLaMA2 inference whose weights live on
the SSD.  This example runs the LLaMA2 Inference workload under several
offloading policies and shows where each policy places the work -- in
particular how Conduit keeps the expensive INT8 multiplications away from
in-flash processing (Ares-Flash shift-and-add) while DM-Offloading pins them
to flash to minimize data movement (Section 6.4/6.5 of the paper).

Run with:  python examples/llm_inference_offloading.py
"""

from repro.common import Resource
from repro.core.metrics import speedup
from repro.experiments import ExperimentConfig, ExperimentRunner, format_table
from repro.workloads import LlamaInferenceWorkload

POLICIES = ("CPU", "GPU", "DM-Offloading", "BW-Offloading", "Conduit",
            "Ideal")


def main() -> None:
    config = ExperimentConfig(workload_scale=0.1)
    runner = ExperimentRunner(config)
    workload = LlamaInferenceWorkload(scale=config.workload_scale)
    print(f"Workload: {workload.name}, footprint "
          f"{workload.footprint_bytes() / (1 << 20):.1f} MiB "
          f"(INT8-quantized, weights resident on the SSD)")

    results = {policy: runner.run(workload, policy) for policy in POLICIES}
    cpu = results["CPU"]
    rows = []
    for policy, result in results.items():
        fractions = result.ssd_resource_fractions()
        rows.append({
            "policy": policy,
            "time_ms": result.total_time_ns / 1e6,
            "speedup_vs_cpu": speedup(cpu, result),
            "energy_mJ": result.total_energy_nj / 1e6,
            "isp": fractions.get(Resource.ISP, 0.0),
            "pud_ssd": fractions.get(Resource.PUD, 0.0),
            "ifp": fractions.get(Resource.IFP, 0.0),
            "p99_us": result.p99_latency_ns / 1e3,
        })
    print(format_table(rows))

    conduit = results["Conduit"]
    dm = results["DM-Offloading"]
    print(f"\nConduit vs DM-Offloading: "
          f"{dm.total_time_ns / conduit.total_time_ns:.2f}x faster, "
          f"{100 * (1 - conduit.total_energy_nj / dm.total_energy_nj):.0f}% "
          "less energy")


if __name__ == "__main__":
    main()
