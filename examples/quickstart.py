"""Quickstart: vectorize a small program and run it through Conduit.

This example shows the full Conduit pipeline on a toy application:

1. describe the application as a scalar loop program (the role the LLVM
   frontend plays in the paper),
2. run Conduit's compile-time auto-vectorization pass,
3. build the simulated NDP-capable SSD platform,
4. execute the vectorized program under Conduit's runtime offloader, and
5. compare against the host-CPU (outside-storage processing) baseline.

Run with:  python examples/quickstart.py
"""

from repro import (AutoVectorizer, ConduitPolicy, ConduitRuntime,
                   HostRuntime, Loop, OpType, Resource, ScalarProgram,
                   ScalarStatement, SSDPlatform, speedup)
from repro.core.platform import PlatformConfig
from repro.common import MIB


def build_application() -> ScalarProgram:
    """A small streaming kernel: c = (a XOR b) + a, repeated twice."""
    program = ScalarProgram("quickstart")
    elements = 256 * 1024
    program.declare_array("a", elements, element_bits=8)
    program.declare_array("b", elements, element_bits=8)
    program.declare_array("c", elements, element_bits=8)
    program.add_loop(Loop(
        name="stream",
        trip_count=elements,
        body=[
            ScalarStatement(op=OpType.XOR, dest="c", sources=("a", "b")),
            ScalarStatement(op=OpType.ADD, dest="c", sources=("c", "a")),
        ],
        repetitions=2,
    ))
    return program


def main() -> None:
    # 1-2. Compile-time preprocessing (programmer-transparent).
    scalar_program = build_application()
    vector_program, report = AutoVectorizer().vectorize(scalar_program)
    print(f"Vectorized {report.vectorizable_fraction:.0%} of the code into "
          f"{len(vector_program)} SIMD instructions")
    for remark in report.remarks:
        print(f"  [{remark.loop}] {remark.reason}")

    # 3. Build the simulated SSD platform (small windows keep this snappy).
    platform_config = PlatformConfig(dram_compute_window_bytes=2 * MIB,
                                     host_cache_bytes=2 * MIB)

    # 4. Run under Conduit's runtime offloader.
    conduit_platform = SSDPlatform(platform_config)
    print("\nDiscovered compute backends:",
          ", ".join(conduit_platform.backends.roster()))
    print("Offload candidates:",
          ", ".join(str(r.value)
                    for r in conduit_platform.offload_candidates()))
    conduit_result = ConduitRuntime(conduit_platform).execute(
        vector_program, ConduitPolicy(), "quickstart")
    print(f"\nConduit: {conduit_result.total_time_ns / 1e6:.3f} ms, "
          f"{conduit_result.total_energy_nj / 1e6:.2f} mJ")
    print("  resource mix:",
          {r.value: f"{f:.0%}" for r, f in
           conduit_result.ssd_resource_fractions().items()})
    print(f"  avg offloading overhead: "
          f"{conduit_result.offload_overhead_avg_ns / 1e3:.2f} us")

    # 5. Compare against the host-CPU OSP baseline.
    cpu_platform = SSDPlatform(platform_config)
    cpu_result = HostRuntime(cpu_platform).execute(
        vector_program, Resource.HOST_CPU, "quickstart")
    print(f"\nHost CPU: {cpu_result.total_time_ns / 1e6:.3f} ms, "
          f"{cpu_result.total_energy_nj / 1e6:.2f} mJ")
    print(f"\nConduit speedup over CPU: "
          f"{speedup(cpu_result, conduit_result):.2f}x")


if __name__ == "__main__":
    main()
