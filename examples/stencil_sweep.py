"""Scenario: iterative stencil computation over an SSD-resident grid.

Scientific kernels such as heat-3d and jacobi-1d sweep a grid that is far
larger than main memory; the paper uses them as the compute-intensive
polybench workloads.  This example sweeps the jacobi-1d workload across
every offloading policy and also demonstrates how to plug a *custom* policy
into the runtime -- here a simple "PuD-first" heuristic -- to show the
public extension point the paper's Section 7 (extensibility) describes.

Run with:  python examples/stencil_sweep.py
"""

from repro.common import Resource
from repro.core.compiler.ir import VectorInstruction
from repro.core.metrics import speedup
from repro.core.offload.features import InstructionFeatures
from repro.core.offload.policies import OffloadingPolicy, PolicyContext
from repro.experiments import ExperimentConfig, ExperimentRunner, format_table
from repro.workloads import Jacobi1DWorkload

POLICIES = ("CPU", "GPU", "ISP", "PuD-SSD", "Ares-Flash", "DM-Offloading",
            "Conduit", "Ideal")


class PuDFirstPolicy(OffloadingPolicy):
    """Custom policy: use PuD-SSD whenever it supports the operation."""

    name = "PuD-First (custom)"

    def choose(self, instruction: VectorInstruction,
               features: InstructionFeatures,
               context: PolicyContext) -> Resource:
        if features.feature(Resource.PUD).supported:
            return Resource.PUD
        return Resource.ISP


def main() -> None:
    config = ExperimentConfig(workload_scale=0.1)
    runner = ExperimentRunner(config)
    workload = Jacobi1DWorkload(scale=config.workload_scale)
    print(f"Workload: {workload.name} "
          f"({workload.footprint_bytes() / (1 << 20):.1f} MiB grid, "
          f"{workload.time_steps} relaxation sweeps)")

    results = {policy: runner.run(workload, policy) for policy in POLICIES}
    results["PuD-First (custom)"] = runner.run_with_policy(workload,
                                                           PuDFirstPolicy())
    cpu = results["CPU"]
    rows = []
    for policy, result in results.items():
        rows.append({
            "policy": policy,
            "time_ms": result.total_time_ns / 1e6,
            "speedup_vs_cpu": speedup(cpu, result),
            "p99_us": result.p99_latency_ns / 1e3,
            "p9999_us": result.p9999_latency_ns / 1e3,
        })
    print(format_table(rows))


if __name__ == "__main__":
    main()
